open Patterns_sim

(* Ben-Or's randomized binary consensus (Ben-Or, PODC 1983; Aspnes'
   survey), bounded to a fixed round cap so runs stay finite.  The
   protocol tolerates [t = (n - 1) / 2] crash faults without ever
   using failure notices: progress comes from counting [n - t]
   messages per phase, never from learning who failed — which is what
   makes it the natural companion to the omission adversary, whose
   faults are exactly the silent message losses fail-stop notices
   cannot describe.

   The coin is a deterministic, adversary-visible common coin: round
   [r]'s flip is the parity of a SplitMix-style hash of [(seed, r)],
   a pure function of public data.  Hunts therefore stay per-index
   deterministic and certificates replay bit for bit — randomized
   consensus with the randomness moved into the adversary's field of
   view, which is the strongest adversary model for Ben-Or anyway. *)

type msg =
  | Report of { round : int; value : bool }
  | Propose of { round : int; value : bool option }
      (** [None] is the "no majority seen" placeholder proposal *)

let compare_msg a b =
  match (a, b) with
  | Report a, Report b ->
    let c = Int.compare a.round b.round in
    if c <> 0 then c else Bool.compare a.value b.value
  | Propose a, Propose b ->
    let c = Int.compare a.round b.round in
    if c <> 0 then c else Option.compare Bool.compare a.value b.value
  | Report _, Propose _ -> -1
  | Propose _, Report _ -> 1

let pp_msg ppf = function
  | Report { round; value } ->
    Format.fprintf ppf "report(r%d,%d)" round (if value then 1 else 0)
  | Propose { round; value } ->
    Format.fprintf ppf "propose(r%d,%s)"
      round
      (match value with None -> "-" | Some v -> if v then "1" else "0")

(* SplitMix-style avalanche on the 63-bit native int; bit 17 of the
   final product is the coin (the low bit would be [x]'s own parity,
   the odd multiplier notwithstanding). *)
let coin ~seed round =
  let x = seed + (round * 0x9E3779B9) in
  let x = x lxor (x lsr 21) in
  let x = x lxor (x lsl 17) in
  let x = x lxor (x lsr 4) in
  (x * 0x2545F4914F6CDD1D) lsr 17 land 1 = 1

(* per-round message tallies; [bots] counts [Propose None] *)
type tally = { zeros : int; ones : int; bots : int }

let tally_zero = { zeros = 0; ones = 0; bots = 0 }

let compare_tally a b =
  let c = Int.compare a.zeros b.zeros in
  if c <> 0 then c
  else
    let c = Int.compare a.ones b.ones in
    if c <> 0 then c else Int.compare a.bots b.bots

let bump value t =
  match value with
  | Some true -> { t with ones = t.ones + 1 }
  | Some false -> { t with zeros = t.zeros + 1 }
  | None -> { t with bots = t.bots + 1 }

(* sorted assoc round -> tally, so structural state comparison is
   order-insensitive in arrival order *)
let rec record round value = function
  | [] -> [ (round, bump value tally_zero) ]
  | (r, t) :: rest ->
    if r = round then (r, bump value t) :: rest
    else if r > round then (round, bump value tally_zero) :: (r, t) :: rest
    else (r, t) :: record round value rest

let tally_of round tallies =
  match List.assoc_opt round tallies with Some t -> t | None -> tally_zero

let compare_tallies a b =
  List.compare
    (fun (ra, ta) (rb, tb) ->
      let c = Int.compare ra rb in
      if c <> 0 then c else compare_tally ta tb)
    a b

type wait = Reports | Proposals

type state = {
  outbox : msg Outbox.t;
  round : int;
  wait : wait;
  est : bool;  (** current estimate, reported at each round start *)
  decision : Decision.t option;
  halted : bool;
  reports : (int * tally) list;
  props : (int * tally) list;
}

let max_round = 3

let make ~name ~seed =
  let module P = struct
    type nonrec state = state
    type nonrec msg = msg

    let name = name

    let describe =
      Printf.sprintf
        "Ben-Or randomized binary consensus, t = (n-1)/2, deterministic common coin \
         (seed %d), %d-round cap"
        seed max_round

    let valid_n n = n >= 3

    let start_round ~n ~me round est s =
      {
        s with
        round;
        wait = Reports;
        est;
        outbox =
          Outbox.broadcast s.outbox (Proc_id.others ~n me) (Report { round; value = est });
        reports = record round (Some est) s.reports;
      }

    let initial ~n ~me ~input =
      start_round ~n ~me 1 input
        {
          outbox = Outbox.empty;
          round = 0;
          wait = Reports;
          est = input;
          decision = None;
          halted = false;
          reports = [];
          props = [];
        }

    (* Drive every threshold that already holds: counting the [n - t]-th
       message of a phase may enable the next phase immediately when
       later-round messages arrived early, so the advance loops until a
       phase is genuinely short of messages. *)
    let rec progress ~n ~me s =
      if s.halted then s
      else
        let t = (n - 1) / 2 in
        let need = n - t in
        match s.wait with
        | Reports ->
          let tl = tally_of s.round s.reports in
          if tl.zeros + tl.ones < need then s
          else
            let value =
              if 2 * tl.ones > n + t then Some true
              else if 2 * tl.zeros > n + t then Some false
              else None
            in
            progress ~n ~me
              {
                s with
                wait = Proposals;
                outbox =
                  Outbox.broadcast s.outbox (Proc_id.others ~n me)
                    (Propose { round = s.round; value });
                props = record s.round value s.props;
              }
        | Proposals ->
          let tl = tally_of s.round s.props in
          if tl.zeros + tl.ones + tl.bots < need then s
          else
            let decision, est =
              if tl.ones >= t + 1 then (Some (Decision.of_bool true), true)
              else if tl.zeros >= t + 1 then (Some (Decision.of_bool false), false)
              else if tl.ones > 0 then (None, true)
              else if tl.zeros > 0 then (None, false)
              else (None, coin ~seed s.round)
            in
            (* the first decision is final: later rounds only relay *)
            let decision =
              match s.decision with Some _ as d -> d | None -> decision
            in
            if s.round >= max_round then { s with decision; est; halted = true }
            else progress ~n ~me (start_round ~n ~me (s.round + 1) est { s with decision })

    let step_kind s =
      if not (Outbox.is_empty s.outbox) then Step_kind.Sending
      else if s.halted then Step_kind.Quiescent
      else Step_kind.Receiving

    let send ~n:_ ~me:_ s =
      match Outbox.pop s.outbox with
      | None -> (None, s)
      | Some (out, rest) -> (Some out, { s with outbox = rest })

    let receive ~n ~me s incoming =
      if s.halted then s
      else
        match incoming with
        (* notices are deliberately unused: Ben-Or's resilience comes
           from counting n - t messages, never from failure detection *)
        | Incoming.Failed _ -> s
        | Incoming.Msg { payload = Report { round; value }; _ } ->
          progress ~n ~me { s with reports = record round (Some value) s.reports }
        | Incoming.Msg { payload = Propose { round; value }; _ } ->
          progress ~n ~me { s with props = record round value s.props }

    let status s =
      match (s.decision, s.halted) with
      | Some d, true when Outbox.is_empty s.outbox -> Status.decided_halted d
      | Some d, _ -> Status.decided d
      | None, true when Outbox.is_empty s.outbox ->
        { Status.decision = None; amnesic = false; halted = true }
      | None, _ -> Status.undecided

    let compare_state a b =
      let c = Int.compare a.round b.round in
      if c <> 0 then c
      else
        let c = compare (a.wait, a.est, a.halted) (b.wait, b.est, b.halted) in
        if c <> 0 then c
        else
          let c = Option.compare Decision.compare a.decision b.decision in
          if c <> 0 then c
          else
            let c = compare_tallies a.reports b.reports in
            if c <> 0 then c
            else
              let c = compare_tallies a.props b.props in
              if c <> 0 then c else Outbox.compare ~cmp_msg:compare_msg a.outbox b.outbox

    let hash_state (s : state) = Hashtbl.hash s

    let pp_state ppf s =
      let tl = tally_of s.round (match s.wait with Reports -> s.reports | Proposals -> s.props) in
      Format.fprintf ppf "r%d/%s est=%d%s%s [%d/%d/%d]" s.round
        (match s.wait with Reports -> "rep" | Proposals -> "prop")
        (if s.est then 1 else 0)
        (match s.decision with
        | None -> ""
        | Some d -> Format.asprintf " dec=%a" Decision.pp d)
        (if s.halted then " halted" else "")
        tl.zeros tl.ones tl.bots

    let compare_msg = compare_msg
    let pp_msg = pp_msg
  end in
  (module P : Protocol.S)

let default = make ~name:"ben-or" ~seed:0
