open Patterns_sim

type t = {
  waiting : Proc_id.Set.t;
  bits : (Proc_id.t * bool) list;  (* sorted by processor *)
  failed_seen : bool;
}

let start procs = { waiting = Proc_id.set_of_list procs; bits = []; failed_seen = false }

let add_bit t q b =
  if Proc_id.Set.mem q t.waiting then
    {
      t with
      waiting = Proc_id.Set.remove q t.waiting;
      bits = List.sort Stdlib.compare ((q, b) :: t.bits);
    }
  else t

let note_failure t q =
  if Proc_id.Set.mem q t.waiting then
    { t with waiting = Proc_id.Set.remove q t.waiting; failed_seen = true }
  else t

let awaiting t q = Proc_id.Set.mem q t.waiting

let complete t = Proc_id.Set.is_empty t.waiting

let failure_seen t = t.failed_seen

let decide ~rule ~n ~me ~own t =
  if t.failed_seen then Decision.Abort
  else begin
    let inputs = Array.make n false in
    inputs.(me) <- own;
    List.iter (fun (q, b) -> inputs.(q) <- b) t.bits;
    Decision_rule.natural_decision rule inputs
  end

let compare a b =
  let c = Proc_id.Set.compare a.waiting b.waiting in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.bits b.bits in
    if c <> 0 then c else Bool.compare a.failed_seen b.failed_seen

let pp ppf t =
  Format.fprintf ppf "collect(wait=%a%s)" Proc_id.pp_set t.waiting
    (if t.failed_seen then ",failure" else "")

let hash t =
  ((Proc_id.set_hash t.waiting * 31) + Hashtbl.hash t.bits) * 2
  + Bool.to_int t.failed_seen
