open Patterns_sim

type mid = { src : Proc_id.t; dst : Proc_id.t; seq : int }

let compare_mid a b =
  let c = Proc_id.compare a.src b.src in
  if c <> 0 then c
  else
    let c = Proc_id.compare a.dst b.dst in
    if c <> 0 then c else Int.compare a.seq b.seq

let pp_mid ppf m = Format.fprintf ppf "%a->%a#%d" Proc_id.pp m.src Proc_id.pp m.dst m.seq

module Make (P : Protocol.S) : Protocol.S = struct
  type copy = { id : mid; clock : int; payload : P.msg }

  (* causal processing order: Lamport clock, ties by id *)
  let compare_copy a b =
    let c = Int.compare a.clock b.clock in
    if c <> 0 then c else compare_mid a.id b.id

  type msg = { carried : copy; history : copy list (* sorted, every ancestor *) }

  type state = {
    inner : P.state;
    seqs : (Proc_id.t * int) list;  (* per-destination send counters, sorted *)
    known : copy list;  (* sorted by [compare_copy]; everything ever learned *)
    processed : mid list;  (* sorted by [compare_mid]; simulated-received or own *)
    clock : int;
  }

  let name = P.name ^ "+totalcomm"
  let describe = "total-communication transform of " ^ P.name
  let valid_n = P.valid_n

  let initial ~n ~me ~input =
    { inner = P.initial ~n ~me ~input; seqs = []; known = []; processed = []; clock = 0 }

  let is_processed s id = List.exists (fun p -> compare_mid p id = 0) s.processed

  let pending s = List.filter (fun c -> not (is_processed s c.id)) s.known

  let step_kind s =
    match P.step_kind s.inner with
    | Step_kind.Sending -> Step_kind.Sending
    | Step_kind.Quiescent -> Step_kind.Quiescent
    | Step_kind.Receiving ->
      if pending s = [] then Step_kind.Receiving
      else Step_kind.Sending (* internal step: simulate one queued receipt *)

  let insert_sorted cmp x l =
    let rec go = function
      | [] -> [ x ]
      | y :: tl as l -> if cmp x y <= 0 then x :: l else y :: go tl
    in
    go l

  let add_known s c =
    if List.exists (fun k -> compare_mid k.id c.id = 0) s.known then s
    else { s with known = insert_sorted compare_copy c s.known }

  let next_seq s dst =
    match List.assoc_opt dst s.seqs with None -> 1 | Some k -> k + 1

  let set_seq s dst k =
    { s with seqs = List.sort Stdlib.compare ((dst, k) :: List.remove_assoc dst s.seqs) }

  let send ~n ~me s =
    match P.step_kind s.inner with
    | Step_kind.Sending -> (
      let out, inner' = P.send ~n ~me s.inner in
      let s = { s with inner = inner' } in
      match out with
      | None -> (None, s)
      | Some (dst, payload) ->
        let seq = next_seq s dst in
        let clock = s.clock + 1 in
        let copy = { id = { src = me; dst; seq }; clock; payload } in
        let history = s.known in
        let s = set_seq s dst seq in
        let s = add_known { s with clock } copy in
        let s = { s with processed = insert_sorted compare_mid copy.id s.processed } in
        (Some (dst, { carried = copy; history }), s))
    | Step_kind.Receiving | Step_kind.Quiescent -> (
      (* internal step: feed the causally-earliest unprocessed copy to
         the simulated processor *)
      match pending s with
      | [] -> (None, s)
      | c :: _ ->
        let inner' =
          P.receive ~n ~me s.inner (Incoming.Msg { from = c.id.src; payload = c.payload })
        in
        ( None,
          {
            s with
            inner = inner';
            processed = insert_sorted compare_mid c.id s.processed;
            clock = max s.clock c.clock + 1;
          } ))

  let receive ~n ~me s incoming =
    match incoming with
    | Incoming.Failed q -> { s with inner = P.receive ~n ~me s.inner (Incoming.Failed q) }
    | Incoming.Msg { from = _; payload = { carried; history } } ->
      let s = List.fold_left add_known s (carried :: history) in
      { s with clock = max s.clock carried.clock + 1 }

  let status s = P.status s.inner

  let compare_state a b =
    let c = P.compare_state a.inner b.inner in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.seqs b.seqs in
      if c <> 0 then c
      else
        let ccopy x y =
          let c = compare_copy x y in
          if c <> 0 then c else P.compare_msg x.payload y.payload
        in
        let c = List.compare ccopy a.known b.known in
        if c <> 0 then c
        else
          let c = List.compare compare_mid a.processed b.processed in
          if c <> 0 then c else Int.compare a.clock b.clock

  (* payloads are ignored: a coarser hash is still compare-consistent,
     and [P.msg] values can only be hashed through [P.compare_msg] *)
  let hash_copy c = (Hashtbl.hash c.id * 31) + c.clock

  let hash_state s =
    let h = (P.hash_state s.inner * 31) + Hashtbl.hash s.seqs in
    let h = (h * 31) + List.fold_left (fun acc c -> (acc * 31) + hash_copy c) 0 s.known in
    let h = (h * 31) + Hashtbl.hash s.processed in
    (h * 31) + s.clock

  let pp_state ppf s =
    Format.fprintf ppf "tc{%a known=%d pending=%d clk=%d}" P.pp_state s.inner
      (List.length s.known) (List.length (pending s)) s.clock

  let compare_msg a b =
    let ccopy x y =
      let c = compare_copy x y in
      if c <> 0 then c else P.compare_msg x.payload y.payload
    in
    let c = ccopy a.carried b.carried in
    if c <> 0 then c else List.compare ccopy a.history b.history

  let pp_msg ppf m =
    Format.fprintf ppf "%a:%a+%d copies" pp_mid m.carried.id P.pp_msg m.carried.payload
      (List.length m.history)
end

let transform (module P : Protocol.S) =
  let module T = Make (P) in
  (module T : Protocol.S)
