open Patterns_sim

type nmsg = Value of bool

let compare_nmsg (Value a) (Value b) = Bool.compare a b

let pp_nmsg ppf (Value b) = Format.fprintf ppf "value(%d)" (if b then 1 else 0)

type phase = Wait_value | Done of Decision.t

type nstate = { outbox : nmsg Outbox.t; phase : phase; input : bool; general : bool }

(* no embedded sets: structural hashing is compare-consistent here *)
let hash_nstate (s : nstate) = Hashtbl.hash s

let general_id : Proc_id.t = 0

module Base : Commit_glue.BASE with type nmsg = nmsg = struct
  type nonrec nstate = nstate
  type nonrec nmsg = nmsg

  let name = "reliable-broadcast"
  let describe = "fail-stop reliable broadcast: general p0, relaying lieutenants"
  let amnesic_variant = false
  let valid_n n = n >= 2

  let initial ~n ~me ~input =
    if Proc_id.equal me general_id then
      {
        outbox = Outbox.broadcast Outbox.empty (Proc_id.others ~n me) (Value input);
        phase = Done (Decision.of_bool input);
        input;
        general = true;
      }
    else { outbox = Outbox.empty; phase = Wait_value; input; general = false }

  let step_kind s =
    if not (Outbox.is_empty s.outbox) then Step_kind.Sending
    else
      match s.phase with
      | Wait_value -> Step_kind.Receiving
      | Done _ -> Step_kind.Receiving (* weak termination: stay available *)

  let send ~n:_ ~me:_ s =
    match Outbox.pop s.outbox with
    | None -> (None, s)
    | Some (out, rest) -> (Some out, { s with outbox = rest })

  let receive ~n ~me s ~from:_ msg =
    match (s.phase, msg) with
    | Wait_value, Value b ->
      (* relay the first value to the other lieutenants, then decide *)
      let peers =
        List.filter (fun q -> not (Proc_id.equal q general_id)) (Proc_id.others ~n me)
      in
      { s with outbox = Outbox.broadcast Outbox.empty peers (Value b); phase = Done (Decision.of_bool b) }
    | Done _, _ -> s

  let bias_of s =
    match s.phase with
    | Done Decision.Commit -> Termination_core.Committable
    | Done Decision.Abort | Wait_value -> Termination_core.Noncommittable

  let on_failure ~n:_ ~me:_ s _q = `Join (bias_of s)
  let on_term_msg ~n:_ ~me:_ s = `Join (bias_of s)

  (* a relayed value arriving mid-termination is ignored: operational
     holders of the value join the run with a committable bias *)
  let term_translate (Value _) = `Ignore
  let known_halted _ = []

  let status s =
    match s.phase with
    | Done d when Outbox.is_empty s.outbox -> Status.decided d
    | Done _ | Wait_value -> Status.undecided

  let compare_phase a b =
    match (a, b) with
    | Wait_value, Wait_value -> 0
    | Done a, Done b -> Decision.compare a b
    | Wait_value, Done _ -> -1
    | Done _, Wait_value -> 1

  let hash_nstate = hash_nstate

  let compare_nstate a b =
    let c = Outbox.compare ~cmp_msg:compare_nmsg a.outbox b.outbox in
    if c <> 0 then c
    else
      let c = compare_phase a.phase b.phase in
      if c <> 0 then c
      else
        let c = Bool.compare a.input b.input in
        if c <> 0 then c else Bool.compare a.general b.general

  let pp_nstate ppf s =
    let pp_phase ppf = function
      | Wait_value -> Format.pp_print_string ppf "wait-value"
      | Done d -> Format.fprintf ppf "done(%a)" Decision.pp d
    in
    Format.fprintf ppf "%a%s" pp_phase s.phase
      (if Outbox.is_empty s.outbox then ""
       else Format.asprintf "+outbox%a" (Outbox.pp ~pp_msg:pp_nmsg) s.outbox)

  let compare_nmsg = compare_nmsg
  let pp_nmsg = pp_nmsg
end

let make ~name =
  let chosen_name = name in
  let module B = struct
    include Base

    let name = chosen_name
  end in
  let module P = Commit_glue.Make (B) in
  (module P : Protocol.S)

let default = make ~name:"reliable-broadcast"
