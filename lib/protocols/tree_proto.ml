open Patterns_sim

type nmsg =
  | Bit of bool  (** phase-1 subtree AND, flowing rootward *)
  | Bias_msg of Termination_core.bias  (** root's bias, flowing leafward *)
  | Ack  (** phase-2 acknowledgement, flowing rootward *)
  | Commit_msg  (** final decision, flowing leafward *)

let nmsg_rank = function Bit _ -> 0 | Bias_msg _ -> 1 | Ack -> 2 | Commit_msg -> 3

let compare_nmsg a b =
  match (a, b) with
  | Bit x, Bit y -> Bool.compare x y
  | Bias_msg x, Bias_msg y ->
    Bool.compare
      (Termination_core.bias_equal x Termination_core.Committable)
      (Termination_core.bias_equal y Termination_core.Committable)
  | Ack, Ack | Commit_msg, Commit_msg -> 0
  | (Bit _ | Bias_msg _ | Ack | Commit_msg), _ -> Int.compare (nmsg_rank a) (nmsg_rank b)

let pp_nmsg ppf = function
  | Bit b -> Format.fprintf ppf "bit(%d)" (if b then 1 else 0)
  | Bias_msg bias -> Format.fprintf ppf "bias(%a)" Termination_core.pp_bias bias
  | Ack -> Format.pp_print_string ppf "ack"
  | Commit_msg -> Format.pp_print_string ppf "commit"

type phase =
  | Gather of { waiting : Proc_id.Set.t; bit : bool }
  | Wait_bias
  | Gather_acks of { waiting : Proc_id.Set.t }
  | Wait_commit
  | Done of Decision.t

let phase_rank = function
  | Gather _ -> 0
  | Wait_bias -> 1
  | Gather_acks _ -> 2
  | Wait_commit -> 3
  | Done _ -> 4

let compare_phase a b =
  match (a, b) with
  | Gather a, Gather b ->
    let c = Proc_id.Set.compare a.waiting b.waiting in
    if c <> 0 then c else Bool.compare a.bit b.bit
  | Gather_acks a, Gather_acks b -> Proc_id.Set.compare a.waiting b.waiting
  | Wait_bias, Wait_bias | Wait_commit, Wait_commit -> 0
  | Done a, Done b -> Decision.compare a b
  | (Gather _ | Wait_bias | Gather_acks _ | Wait_commit | Done _), _ ->
    Int.compare (phase_rank a) (phase_rank b)

type nstate = {
  outbox : nmsg Outbox.t;  (* drained before the phase is active *)
  phase : phase;
  child_bits : (Proc_id.t * bool) list;  (* sorted by child id *)
  committable : bool;  (* has learned a committable bias *)
  input : bool;
}

let hash_phase = function
  | Gather { waiting; bit } -> ((Proc_id.set_hash waiting * 2) + Bool.to_int bit) * 8
  | Wait_bias -> 1
  | Gather_acks { waiting } -> (Proc_id.set_hash waiting * 8) + 2
  | Wait_commit -> 3
  | Done d -> (Hashtbl.hash d * 8) + 4

let hash_nstate s =
  let h = (Hashtbl.hash s.outbox * 31) + hash_phase s.phase in
  let h = (h * 31) + Hashtbl.hash s.child_bits in
  (((h * 2) + Bool.to_int s.committable) * 2) + Bool.to_int s.input

module Make_base (Cfg : sig
  val tree : Tree.t
  val amnesic : bool
  val name : string
  val describe : string
end) : Commit_glue.BASE with type nmsg = nmsg = struct
  type nonrec nstate = nstate
  type nonrec nmsg = nmsg

  let name = Cfg.name
  let describe = Cfg.describe
  let amnesic_variant = Cfg.amnesic
  let valid_n n = n = Tree.size Cfg.tree

  let tree = Cfg.tree
  let root = Tree.root tree

  let initial ~n:_ ~me ~input =
    let children = Tree.children tree me in
    if children = [] then
      (* leaf: report the input, then either deduce the bias (input 0)
         or wait for it *)
      let parent = Option.get (Tree.parent tree me) in
      {
        outbox = [ (parent, Bit input) ];
        phase = (if input then Wait_bias else Done Decision.Abort);
        child_bits = [];
        committable = false;
        input;
      }
    else
      {
        outbox = [];
        phase = Gather { waiting = Proc_id.set_of_list children; bit = input };
        child_bits = [];
        committable = false;
        input;
      }

  let step_kind s =
    if not (Outbox.is_empty s.outbox) then Step_kind.Sending
    else
      match s.phase with
      | Gather _ | Wait_bias | Gather_acks _ | Wait_commit -> Step_kind.Receiving
      | Done _ -> Step_kind.Receiving (* weak termination: listen forever *)

  let send ~n:_ ~me:_ s =
    match Outbox.pop s.outbox with
    | None -> (None, s)
    | Some (out, rest) -> (Some out, { s with outbox = rest })

  (* Down-phase targets: every child except leaves whose reported bit
     was 0 (Figure 1's starred note). *)
  let bias_targets s me =
    List.filter
      (fun c ->
        not (Tree.is_leaf tree c && List.assoc_opt c s.child_bits = Some false))
      (Tree.children tree me)

  let on_gather s me c b waiting bit =
    let bit = bit && b in
    let waiting = Proc_id.Set.remove c waiting in
    let s = { s with child_bits = List.sort Stdlib.compare ((c, b) :: s.child_bits) } in
    if not (Proc_id.Set.is_empty waiting) then { s with phase = Gather { waiting; bit } }
    else if Proc_id.equal me root then
      (* root fixes the bias *)
      if bit then
        {
          s with
          committable = true;
          outbox =
            Outbox.broadcast Outbox.empty (bias_targets s me) (Bias_msg Termination_core.Committable);
          phase = Gather_acks { waiting = Proc_id.set_of_list (Tree.children tree me) };
        }
      else
        {
          s with
          outbox =
            Outbox.broadcast Outbox.empty (bias_targets s me)
              (Bias_msg Termination_core.Noncommittable);
          phase = Done Decision.Abort;
        }
    else
      let parent = Option.get (Tree.parent tree me) in
      { s with outbox = [ (parent, Bit bit) ]; phase = Wait_bias }

  let receive ~n:_ ~me s ~from msg =
    match (s.phase, msg) with
    | Gather { waiting; bit }, Bit b when Proc_id.Set.mem from waiting ->
      on_gather s me from b waiting bit
    | Wait_bias, Bias_msg Termination_core.Noncommittable ->
      if Tree.is_leaf tree me then { s with phase = Done Decision.Abort }
      else
        {
          s with
          outbox =
            Outbox.broadcast Outbox.empty (bias_targets s me)
              (Bias_msg Termination_core.Noncommittable);
          phase = Done Decision.Abort;
        }
    | Wait_bias, Bias_msg Termination_core.Committable ->
      let s = { s with committable = true } in
      if Tree.is_leaf tree me then
        let parent = Option.get (Tree.parent tree me) in
        { s with outbox = [ (parent, Ack) ]; phase = Wait_commit }
      else
        {
          s with
          outbox =
            Outbox.broadcast Outbox.empty (Tree.children tree me)
              (Bias_msg Termination_core.Committable);
          phase = Gather_acks { waiting = Proc_id.set_of_list (Tree.children tree me) };
        }
    | Gather_acks { waiting }, Ack when Proc_id.Set.mem from waiting ->
      let waiting = Proc_id.Set.remove from waiting in
      if not (Proc_id.Set.is_empty waiting) then { s with phase = Gather_acks { waiting } }
      else if Proc_id.equal me root then
        {
          s with
          outbox = Outbox.broadcast Outbox.empty (Tree.children tree me) Commit_msg;
          phase = Done Decision.Commit;
        }
      else
        let parent = Option.get (Tree.parent tree me) in
        { s with outbox = [ (parent, Ack) ]; phase = Wait_commit }
    | Wait_commit, Commit_msg ->
      if Tree.is_leaf tree me then { s with phase = Done Decision.Commit }
      else
        {
          s with
          outbox = Outbox.broadcast Outbox.empty (Tree.children tree me) Commit_msg;
          phase = Done Decision.Commit;
        }
    | (Gather _ | Wait_bias | Gather_acks _ | Wait_commit | Done _), _ ->
      (* stray or duplicate message: safe to ignore (all decisive
         information travels through the phases above) *)
      s

  let current_bias s =
    if s.committable then Termination_core.Committable else Termination_core.Noncommittable

  let on_failure ~n:_ ~me:_ s _q = `Join (current_bias s)
  let on_term_msg ~n:_ ~me:_ s = `Join (current_bias s)

  (* in-flight phase messages arriving during a termination run are
     ignored: any operational processor holding a committable bias
     joins the run and propagates it through its round broadcasts *)
  let term_translate (_ : nmsg) = `Ignore
  let known_halted _ = []

  (* a 0-input leaf is born with phase [Done Abort] but only occupies
     the decision state once its report has been sent ("p4 sends '0'
     as its input value and halts in an abort state") *)
  let status s =
    match s.phase with
    | Done d when Outbox.is_empty s.outbox -> Status.decided d
    | Done _ | Gather _ | Wait_bias | Gather_acks _ | Wait_commit -> Status.undecided

  let hash_nstate = hash_nstate

  let compare_nstate a b =
    let c = Outbox.compare ~cmp_msg:compare_nmsg a.outbox b.outbox in
    if c <> 0 then c
    else
      let c = compare_phase a.phase b.phase in
      if c <> 0 then c
      else
        let c = Stdlib.compare a.child_bits b.child_bits in
        if c <> 0 then c
        else
          let c = Bool.compare a.committable b.committable in
          if c <> 0 then c else Bool.compare a.input b.input

  let pp_phase ppf = function
    | Gather { waiting; bit } ->
      Format.fprintf ppf "gather(bit=%d,wait=%a)" (if bit then 1 else 0) Proc_id.pp_set waiting
    | Wait_bias -> Format.pp_print_string ppf "wait-bias"
    | Gather_acks { waiting } -> Format.fprintf ppf "gather-acks(wait=%a)" Proc_id.pp_set waiting
    | Wait_commit -> Format.pp_print_string ppf "wait-commit"
    | Done d -> Format.fprintf ppf "done(%a)" Decision.pp d

  let pp_nstate ppf s =
    Format.fprintf ppf "%a%s" pp_phase s.phase
      (if Outbox.is_empty s.outbox then "" else Format.asprintf "+outbox%a" (Outbox.pp ~pp_msg:pp_nmsg) s.outbox)

  let compare_nmsg = compare_nmsg
  let pp_nmsg = pp_nmsg
end

let make ?(amnesic = false) ~name ~describe tree =
  let module B = Make_base (struct
    let tree = tree
    let amnesic = amnesic
    let name = name
    let describe = describe
  end) in
  let module P = Commit_glue.Make (B) in
  (module P : Protocol.S)

let fig1 =
  make ~name:"fig1-tree"
    ~describe:"Figure 1: WT-TC tree protocol on the 7-processor binary tree" (Tree.binary 7)

let fig1_amnesic =
  make ~amnesic:true ~name:"fig1-tree-st"
    ~describe:"Corollary 11: ST-TC amnesic variant of the Figure 1 tree protocol"
    (Tree.binary 7)

let three_phase_commit n =
  make
    ~name:(Printf.sprintf "3pc-%d" n)
    ~describe:"three-phase commit: the tree protocol on a star topology" (Tree.star n)
