(** Termination-protocol embedding.

    Every consensus protocol in the paper specifies its failure-free
    behaviour and delegates failures to the Appendix termination
    protocol ("whenever a failure is detected processors invoke the
    termination protocol").  This functor factors that delegation out:
    a [BASE] describes the failure-free state machine plus three
    policies (when to join, what bias to join with, how to interpret a
    normal message arriving during termination), and [Make] produces a
    full [Protocol.S] whose message type is the base vocabulary
    extended with termination messages.

    The glue also implements the strong-termination (amnesic) variants
    of Corollary 11: with [amnesic_variant] set, a processor takes one
    internal step immediately after deciding and moves to the amnesic
    state, and joins any later termination run by announcing amnesia
    rather than a bias. *)

open Patterns_sim

module type BASE = sig
  type nstate
  (** Failure-free ("normal-mode") local state. *)

  type nmsg
  (** Failure-free message vocabulary. *)

  val name : string
  val describe : string
  val valid_n : int -> bool

  val amnesic_variant : bool
  (** Become amnesic immediately after deciding (ST protocols). *)

  val initial : n:int -> me:Proc_id.t -> input:bool -> nstate
  val step_kind : nstate -> Step_kind.t
  val send : n:int -> me:Proc_id.t -> nstate -> (Proc_id.t * nmsg) option * nstate

  val receive : n:int -> me:Proc_id.t -> nstate -> from:Proc_id.t -> nmsg -> nstate
  (** Normal message in normal mode. *)

  val on_failure :
    n:int ->
    me:Proc_id.t ->
    nstate ->
    Proc_id.t ->
    [ `Join of Termination_core.bias | `Continue of nstate ]
  (** Reaction to a failure notice in normal mode: join the
      termination protocol with the given bias, or handle it locally
      (e.g. a coordinator substituting a failure for a missing vote). *)

  val on_term_msg :
    n:int -> me:Proc_id.t -> nstate -> [ `Join of Termination_core.bias | `Ignore ]
  (** Reaction to a termination message arriving in normal mode:
      somebody else detected a failure first. *)

  val term_translate : nmsg -> [ `Ignore | `Peer_decided of Decision.t ]
  (** How a normal message is interpreted when it arrives in
      termination mode.  [`Peer_decided d] implements the "modified"
      termination protocol of Figure 2: the sender has decided [d]
      and will halt, so it is removed from the UP set and (subject to
      the final-round guard of {!Termination_core.upgrade_committable})
      a commit upgrades the local bias.

      Everything else must be [`Ignore]: adopting a committable bias
      from an in-flight normal message mid-termination would inject
      committability without consuming a failure, breaking the N-round
      flooding argument — an operational processor holding the bias
      joins the run itself and propagates it through its round
      broadcasts, which is sufficient. *)

  val known_halted : nstate -> Proc_id.t list
  (** Peers this state knows will never participate in a termination
      run (e.g. a coordinator that halts right after broadcasting its
      decision, once that decision has been received).  They are
      excluded from the UP set when joining, since nothing will ever
      remove them otherwise. *)

  val status : nstate -> Status.t

  val compare_nstate : nstate -> nstate -> int

  val hash_nstate : nstate -> int
  (** Consistent with [compare_nstate]; see {!Protocol.S.hash_state}
      for the canonical-hashing requirements on embedded sets. *)

  val pp_nstate : Format.formatter -> nstate -> unit
  val compare_nmsg : nmsg -> nmsg -> int
  val pp_nmsg : Format.formatter -> nmsg -> unit
end

module Make (B : BASE) : sig
  type msg = Norm of B.nmsg | Term of Termination_core.msg

  include Protocol.S with type msg := msg
end
