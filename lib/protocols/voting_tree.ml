open Patterns_sim

type nmsg =
  | Votes of (Proc_id.t * bool) list  (** subtree votes, flowing rootward *)
  | Bias_msg of Termination_core.bias
  | Ack
  | Commit_msg

let nmsg_rank = function Votes _ -> 0 | Bias_msg _ -> 1 | Ack -> 2 | Commit_msg -> 3

let compare_nmsg a b =
  match (a, b) with
  | Votes x, Votes y -> Stdlib.compare x y
  | Bias_msg x, Bias_msg y ->
    Bool.compare
      (Termination_core.bias_equal x Termination_core.Committable)
      (Termination_core.bias_equal y Termination_core.Committable)
  | Ack, Ack | Commit_msg, Commit_msg -> 0
  | (Votes _ | Bias_msg _ | Ack | Commit_msg), _ -> Int.compare (nmsg_rank a) (nmsg_rank b)

let pp_nmsg ppf = function
  | Votes vs ->
    Format.fprintf ppf "votes[%s]"
      (String.concat ","
         (List.map (fun (p, b) -> Printf.sprintf "%d:%d" p (if b then 1 else 0)) vs))
  | Bias_msg bias -> Format.fprintf ppf "bias(%a)" Termination_core.pp_bias bias
  | Ack -> Format.pp_print_string ppf "ack"
  | Commit_msg -> Format.pp_print_string ppf "commit"

type phase =
  | Gather of { waiting : Proc_id.Set.t; votes : (Proc_id.t * bool) list; failed_seen : bool }
  | Wait_bias
  | Gather_acks of { waiting : Proc_id.Set.t }
  | Wait_commit
  | Done of Decision.t

type nstate = {
  outbox : nmsg Outbox.t;
  phase : phase;
  committable : bool;
  input : bool;
}

let hash_phase = function
  | Gather { waiting; votes; failed_seen } ->
    ((((Proc_id.set_hash waiting * 31) + Hashtbl.hash votes) * 2) + Bool.to_int failed_seen) * 8
  | Wait_bias -> 1
  | Gather_acks { waiting } -> (Proc_id.set_hash waiting * 8) + 2
  | Wait_commit -> 3
  | Done d -> (Hashtbl.hash d * 8) + 4

let hash_nstate s =
  let h = (Hashtbl.hash s.outbox * 31) + hash_phase s.phase in
  (((h * 2) + Bool.to_int s.committable) * 2) + Bool.to_int s.input

module Make_base (Cfg : sig
  val tree : Tree.t
  val rule : Decision_rule.t
  val name : string
end) : Commit_glue.BASE with type nmsg = nmsg = struct
  type nonrec nstate = nstate
  type nonrec nmsg = nmsg

  let name = Cfg.name

  let describe =
    Printf.sprintf "rule-parametric WT-TC voting tree (%s)" (Decision_rule.to_string Cfg.rule)

  let amnesic_variant = false
  let valid_n n = n = Tree.size Cfg.tree

  let tree = Cfg.tree
  let root = Tree.root tree

  let initial ~n:_ ~me ~input =
    match Tree.children tree me with
    | [] ->
      let parent = Option.get (Tree.parent tree me) in
      {
        outbox = [ (parent, Votes [ (me, input) ]) ];
        phase = Wait_bias;
        committable = false;
        input;
      }
    | children ->
      {
        outbox = [];
        phase =
          Gather
            { waiting = Proc_id.set_of_list children; votes = [ (me, input) ]; failed_seen = false };
        committable = false;
        input;
      }

  let step_kind s =
    if not (Outbox.is_empty s.outbox) then Step_kind.Sending
    else
      match s.phase with
      | Gather _ | Wait_bias | Gather_acks _ | Wait_commit -> Step_kind.Receiving
      | Done _ -> Step_kind.Receiving (* weak termination *)

  let send ~n:_ ~me:_ s =
    match Outbox.pop s.outbox with
    | None -> (None, s)
    | Some (out, rest) -> (Some out, { s with outbox = rest })

  let children_of me = Tree.children tree me

  (* subtree complete: the root fixes the bias from the assembled vote
     vector; interior nodes forward their subtree's votes upward *)
  let finish_gather ~n s me votes failed_seen =
    if Proc_id.equal me root then begin
      let inputs = Array.make n false in
      List.iter (fun (q, b) -> inputs.(q) <- b) votes;
      let committable =
        (not failed_seen)
        && Decision_rule.permits Cfg.rule ~inputs ~failure_occurred:false Decision.Commit
      in
      let bias =
        if committable then Termination_core.Committable else Termination_core.Noncommittable
      in
      let s = { s with committable } in
      let s =
        { s with outbox = Outbox.broadcast Outbox.empty (children_of me) (Bias_msg bias) }
      in
      if committable then
        { s with phase = Gather_acks { waiting = Proc_id.set_of_list (children_of me) } }
      else { s with phase = Done Decision.Abort }
    end
    else
      let parent = Option.get (Tree.parent tree me) in
      { s with outbox = [ (parent, Votes votes) ]; phase = Wait_bias }

  let receive ~n ~me s ~from msg =
    match (s.phase, msg) with
    | Gather { waiting; votes; failed_seen }, Votes vs when Proc_id.Set.mem from waiting ->
      let waiting = Proc_id.Set.remove from waiting in
      let votes = List.sort Stdlib.compare (vs @ votes) in
      if Proc_id.Set.is_empty waiting then finish_gather ~n s me votes failed_seen
      else { s with phase = Gather { waiting; votes; failed_seen } }
    | Wait_bias, Bias_msg Termination_core.Noncommittable ->
      {
        s with
        outbox =
          Outbox.broadcast Outbox.empty (children_of me) (Bias_msg Termination_core.Noncommittable);
        phase = Done Decision.Abort;
      }
    | Wait_bias, Bias_msg Termination_core.Committable ->
      let s = { s with committable = true } in
      if Tree.is_leaf tree me then
        let parent = Option.get (Tree.parent tree me) in
        { s with outbox = [ (parent, Ack) ]; phase = Wait_commit }
      else
        {
          s with
          outbox =
            Outbox.broadcast Outbox.empty (children_of me) (Bias_msg Termination_core.Committable);
          phase = Gather_acks { waiting = Proc_id.set_of_list (children_of me) };
        }
    | Gather_acks { waiting }, Ack when Proc_id.Set.mem from waiting ->
      let waiting = Proc_id.Set.remove from waiting in
      if not (Proc_id.Set.is_empty waiting) then { s with phase = Gather_acks { waiting } }
      else if Proc_id.equal me root then
        {
          s with
          outbox = Outbox.broadcast Outbox.empty (children_of me) Commit_msg;
          phase = Done Decision.Commit;
        }
      else
        let parent = Option.get (Tree.parent tree me) in
        { s with outbox = [ (parent, Ack) ]; phase = Wait_commit }
    | Wait_commit, Commit_msg ->
      {
        s with
        outbox = Outbox.broadcast Outbox.empty (children_of me) Commit_msg;
        phase = Done Decision.Commit;
      }
    | (Gather _ | Wait_bias | Gather_acks _ | Wait_commit | Done _), _ -> s

  let current_bias s =
    if s.committable then Termination_core.Committable else Termination_core.Noncommittable

  let on_failure ~n ~me s q =
    match s.phase with
    | Gather { waiting; votes; failed_seen = _ } when Proc_id.Set.mem q waiting ->
      (* a failed subtree: keep collecting from the rest; the failure
         flag forces an abort bias, which every rule permits *)
      let waiting = Proc_id.Set.remove q waiting in
      if Proc_id.Set.is_empty waiting then `Continue (finish_gather ~n s me votes true)
      else `Continue { s with phase = Gather { waiting; votes; failed_seen = true } }
    | Gather _ | Wait_bias | Gather_acks _ | Wait_commit | Done _ -> `Join (current_bias s)

  let on_term_msg ~n:_ ~me:_ s = `Join (current_bias s)
  let term_translate (_ : nmsg) = `Ignore
  let known_halted _ = []

  let status s =
    match s.phase with
    | Done d when Outbox.is_empty s.outbox -> Status.decided d
    | Done _ | Gather _ | Wait_bias | Gather_acks _ | Wait_commit -> Status.undecided

  let compare_phase a b =
    match (a, b) with
    | Gather a, Gather b ->
      let c = Proc_id.Set.compare a.waiting b.waiting in
      if c <> 0 then c
      else
        let c = Stdlib.compare a.votes b.votes in
        if c <> 0 then c else Bool.compare a.failed_seen b.failed_seen
    | Gather_acks a, Gather_acks b -> Proc_id.Set.compare a.waiting b.waiting
    | Wait_bias, Wait_bias | Wait_commit, Wait_commit -> 0
    | Done a, Done b -> Decision.compare a b
    | (Gather _ | Wait_bias | Gather_acks _ | Wait_commit | Done _), _ ->
      let rank = function
        | Gather _ -> 0 | Wait_bias -> 1 | Gather_acks _ -> 2 | Wait_commit -> 3 | Done _ -> 4
      in
      Int.compare (rank a) (rank b)

  let hash_nstate = hash_nstate

  let compare_nstate a b =
    let c = Outbox.compare ~cmp_msg:compare_nmsg a.outbox b.outbox in
    if c <> 0 then c
    else
      let c = compare_phase a.phase b.phase in
      if c <> 0 then c
      else
        let c = Bool.compare a.committable b.committable in
        if c <> 0 then c else Bool.compare a.input b.input

  let pp_nstate ppf s =
    let pp_phase ppf = function
      | Gather { waiting; failed_seen; _ } ->
        Format.fprintf ppf "gather(wait=%a%s)" Proc_id.pp_set waiting
          (if failed_seen then ",failure" else "")
      | Wait_bias -> Format.pp_print_string ppf "wait-bias"
      | Gather_acks { waiting } -> Format.fprintf ppf "gather-acks(wait=%a)" Proc_id.pp_set waiting
      | Wait_commit -> Format.pp_print_string ppf "wait-commit"
      | Done d -> Format.fprintf ppf "done(%a)" Decision.pp d
    in
    Format.fprintf ppf "%a%s" pp_phase s.phase
      (if Outbox.is_empty s.outbox then ""
       else Format.asprintf "+outbox%a" (Outbox.pp ~pp_msg:pp_nmsg) s.outbox)

  let compare_nmsg = compare_nmsg
  let pp_nmsg = pp_nmsg
end

let make ~rule ~name tree =
  let module B = Make_base (struct
    let tree = tree
    let rule = rule
    let name = name
  end) in
  let module P = Commit_glue.Make (B) in
  (module P : Protocol.S)

let threshold_star ~k n =
  make ~rule:(Decision_rule.Threshold k)
    ~name:(Printf.sprintf "voting-star-thr%d-%d" k n)
    (Tree.star n)

let subset_star ~quorum n =
  make ~rule:(Decision_rule.Subset quorum)
    ~name:(Printf.sprintf "voting-star-subset-%d" n)
    (Tree.star n)
