open Patterns_sim

module type BASE = sig
  type nstate
  type nmsg

  val name : string
  val describe : string
  val valid_n : int -> bool
  val amnesic_variant : bool
  val initial : n:int -> me:Proc_id.t -> input:bool -> nstate
  val step_kind : nstate -> Step_kind.t
  val send : n:int -> me:Proc_id.t -> nstate -> (Proc_id.t * nmsg) option * nstate
  val receive : n:int -> me:Proc_id.t -> nstate -> from:Proc_id.t -> nmsg -> nstate

  val on_failure :
    n:int ->
    me:Proc_id.t ->
    nstate ->
    Proc_id.t ->
    [ `Join of Termination_core.bias | `Continue of nstate ]

  val on_term_msg :
    n:int -> me:Proc_id.t -> nstate -> [ `Join of Termination_core.bias | `Ignore ]

  val term_translate : nmsg -> [ `Ignore | `Peer_decided of Decision.t ]
  val known_halted : nstate -> Proc_id.t list
  val status : nstate -> Status.t
  val compare_nstate : nstate -> nstate -> int
  val hash_nstate : nstate -> int
  val pp_nstate : Format.formatter -> nstate -> unit
  val compare_nmsg : nmsg -> nmsg -> int
  val pp_nmsg : Format.formatter -> nmsg -> unit
end

module Make (B : BASE) = struct
  type msg = Norm of B.nmsg | Term of Termination_core.msg

  (* [`No]: not applicable / not yet decided.  [`Pending]: decided,
     about to take the internal forgetting step.  [`Done]: amnesic. *)
  type amnesia = No_amnesia | Pending_amnesia | Amnesic

  type term_info = {
    core : Termination_core.t;
    decided : Decision.t option;  (* decision carried from normal mode *)
    amnesia : amnesia;
  }

  type state =
    | Norm_mode of { norm : B.nstate; up : Proc_id.Set.t; amnesia : amnesia }
    | Term_mode of term_info

  let name = B.name
  let describe = B.describe
  let valid_n = B.valid_n

  let initial ~n ~me ~input =
    Norm_mode { norm = B.initial ~n ~me ~input; up = Proc_id.set_of_list (Proc_id.all ~n); amnesia = No_amnesia }

  (* Decide whether the freshly produced normal state triggers the
     ST-variant forgetting step. *)
  let refresh_amnesia amnesia norm =
    match amnesia with
    | Pending_amnesia | Amnesic -> amnesia
    | No_amnesia ->
      (* forget as soon as decided — but let any already-queued sends
         (e.g. forwarding the decision down a chain) drain first *)
      if
        B.amnesic_variant
        && (B.status norm).Status.decision <> None
        && not (Step_kind.equal (B.step_kind norm) Step_kind.Sending)
      then Pending_amnesia
      else No_amnesia

  let normal norm up amnesia = Norm_mode { norm; up; amnesia = refresh_amnesia amnesia norm }

  let step_kind = function
    | Norm_mode { amnesia = Pending_amnesia; _ } -> Step_kind.Sending
    | Norm_mode { norm; _ } -> B.step_kind norm
    | Term_mode { amnesia = Pending_amnesia; _ } -> Step_kind.Sending
    | Term_mode { core; _ } ->
      (* the Appendix protocol ends with "halt": a finished participant
         takes no further steps (its rounds have all been broadcast) *)
      if Termination_core.finished core then Step_kind.Quiescent
      else Termination_core.step_kind core

  let term_decided t core' =
    (* once the termination run finishes, record its outcome as the
       carried decision (the engine checks it agrees with any decision
       made before joining); in the ST variant the decision is followed
       by the internal forgetting step *)
    match Termination_core.outcome core' with
    | Some _ as d ->
      let amnesia =
        match t.amnesia with
        | No_amnesia when B.amnesic_variant -> Pending_amnesia
        | a -> a
      in
      Term_mode { core = core'; decided = d; amnesia }
    | None -> Term_mode { t with core = core' }

  let send ~n ~me state =
    match state with
    | Norm_mode { amnesia = Pending_amnesia; norm; up } ->
      (None, Norm_mode { norm; up; amnesia = Amnesic })
    | Norm_mode { norm; up; amnesia } ->
      let out, norm' = B.send ~n ~me norm in
      let out = Option.map (fun (q, m) -> (q, Norm m)) out in
      (out, normal norm' up amnesia)
    | Term_mode ({ amnesia = Pending_amnesia; _ } as t) -> (None, Term_mode { t with amnesia = Amnesic })
    | Term_mode ({ core; _ } as t) ->
      let out, core' = Termination_core.send core in
      let out = Option.map (fun (q, m) -> (q, Term m)) out in
      (out, term_decided t core')

  let join ~n ~me ~up ~decided ~amnesia bias =
    let core =
      match amnesia with
      | Amnesic | Pending_amnesia -> Termination_core.start_amnesic ~n ~me ~up
      | No_amnesia -> Termination_core.start ~n ~me ~up ~bias
    in
    Term_mode { core; decided; amnesia = (match amnesia with Pending_amnesia -> Amnesic | a -> a) }

  (* a base may manage amnesia itself (e.g. the ST variant of the
     Figure 4 protocol erases state mid-phase); respect its status
     when joining a termination run *)
  let effective_amnesia norm amnesia =
    if (B.status norm).Status.amnesic then Amnesic else amnesia

  let receive ~n ~me state incoming =
    match state with
    | Norm_mode { norm; up; amnesia } -> (
      match incoming with
      | Incoming.Failed q -> (
        let up = Proc_id.Set.remove q up in
        match B.on_failure ~n ~me norm q with
        | `Continue norm' -> normal norm' up amnesia
        | `Join bias ->
          let up = List.fold_left (fun s p -> Proc_id.Set.remove p s) up (B.known_halted norm) in
          join ~n ~me ~up ~decided:(B.status norm).Status.decision
            ~amnesia:(effective_amnesia norm amnesia) bias)
      | Incoming.Msg { from; payload = Norm m } -> normal (B.receive ~n ~me norm ~from m) up amnesia
      | Incoming.Msg { from; payload = Term tmsg } -> (
        match B.on_term_msg ~n ~me norm with
        | `Ignore -> Norm_mode { norm; up; amnesia }
        | `Join bias -> (
          let up = List.fold_left (fun s p -> Proc_id.Set.remove p s) up (B.known_halted norm) in
          match
            join ~n ~me ~up ~decided:(B.status norm).Status.decision
              ~amnesia:(effective_amnesia norm amnesia) bias
          with
          | Term_mode t ->
            let core' = Termination_core.on_msg t.core ~from tmsg in
            term_decided t core'
          | Norm_mode _ -> assert false)))
    | Term_mode ({ core; _ } as t) -> (
      match incoming with
      | Incoming.Failed q -> term_decided t (Termination_core.on_failure core q)
      | Incoming.Msg { from; payload = Term tmsg } ->
        term_decided t (Termination_core.on_msg core ~from tmsg)
      | Incoming.Msg { from; payload = Norm m } -> (
        let upgrade core = function
          | Decision.Commit -> Termination_core.upgrade_committable core
          | Decision.Abort -> core
        in
        match B.term_translate m with
        | `Ignore -> state
        | `Peer_decided d ->
          (* classify the decision (bias upgrade) before removing the
             halted sender: the removal may complete the final round *)
          let core = upgrade core d in
          term_decided t (Termination_core.on_failure core from)))

  let status = function
    | Norm_mode { amnesia = Amnesic; norm; _ } ->
      { Status.decision = None; amnesic = true; halted = (B.status norm).Status.halted }
    | Norm_mode { norm; _ } -> B.status norm
    | Term_mode { amnesia = Amnesic; core; _ } ->
      { Status.decision = None; amnesic = true; halted = Termination_core.finished core }
    | Term_mode { decided; core; _ } ->
      { Status.decision = decided; amnesic = false; halted = Termination_core.finished core }

  let amnesia_rank = function No_amnesia -> 0 | Pending_amnesia -> 1 | Amnesic -> 2

  let compare_state a b =
    match (a, b) with
    | Norm_mode a, Norm_mode b ->
      let c = B.compare_nstate a.norm b.norm in
      if c <> 0 then c
      else
        let c = Proc_id.Set.compare a.up b.up in
        if c <> 0 then c else Int.compare (amnesia_rank a.amnesia) (amnesia_rank b.amnesia)
    | Term_mode a, Term_mode b ->
      let c = Termination_core.compare a.core b.core in
      if c <> 0 then c
      else
        let c = Option.compare Decision.compare a.decided b.decided in
        if c <> 0 then c else Int.compare (amnesia_rank a.amnesia) (amnesia_rank b.amnesia)
    | Norm_mode _, Term_mode _ -> -1
    | Term_mode _, Norm_mode _ -> 1

  let hash_state = function
    | Norm_mode { norm; up; amnesia } ->
      ((((B.hash_nstate norm * 31) + Proc_id.set_hash up) * 31) + amnesia_rank amnesia) * 2
    | Term_mode { core; decided; amnesia } ->
      (((((Termination_core.hash core * 31) + Hashtbl.hash decided) * 31)
       + amnesia_rank amnesia)
       * 2)
      + 1

  let pp_state ppf = function
    | Norm_mode { norm; amnesia; _ } ->
      Format.fprintf ppf "%a%s" B.pp_nstate norm
        (match amnesia with Amnesic -> "/amnesic" | Pending_amnesia -> "/forgetting" | No_amnesia -> "")
    | Term_mode { core; amnesia; _ } ->
      Format.fprintf ppf "%a%s" Termination_core.pp core
        (match amnesia with Amnesic -> "/amnesic" | Pending_amnesia -> "/forgetting" | No_amnesia -> "")

  let compare_msg a b =
    match (a, b) with
    | Norm a, Norm b -> B.compare_nmsg a b
    | Term a, Term b -> Termination_core.compare_msg a b
    | Norm _, Term _ -> -1
    | Term _, Norm _ -> 1

  let pp_msg ppf = function
    | Norm m -> B.pp_nmsg ppf m
    | Term m -> Format.fprintf ppf "term:%a" Termination_core.pp_msg m
end
