open Patterns_sim

type t =
  | Unanimity
  | Broadcast of Proc_id.t
  | Threshold of int
  | Subset of Proc_id.t list
  | Any_input

let count_ones inputs = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 inputs

let commit_permitted rule inputs =
  match rule with
  | Unanimity -> Array.for_all Fun.id inputs
  | Broadcast p -> inputs.(p)
  | Threshold k -> count_ones inputs >= k
  | Subset s -> List.for_all (fun p -> inputs.(p)) s
  | Any_input -> Array.exists Fun.id inputs

let natural_decision rule inputs =
  if commit_permitted rule inputs then Decision.Commit else Decision.Abort

let permits rule ~inputs ~failure_occurred decision =
  match decision with
  | Decision.Commit -> commit_permitted rule inputs
  | Decision.Abort -> (
    (* abort is permitted when commit is not forced; under unanimity
       the paper allows abort exactly when some bit is 0 or a failure
       occurred, and symmetrically for the generalizations *)
    match rule with
    | Unanimity -> failure_occurred || not (Array.for_all Fun.id inputs)
    | Broadcast p -> failure_occurred || not inputs.(p)
    | Threshold k -> failure_occurred || count_ones inputs < k
    | Subset s -> failure_occurred || not (List.for_all (fun p -> inputs.(p)) s)
    | Any_input -> failure_occurred || not (Array.for_all Fun.id inputs))

let to_string = function
  | Unanimity -> "unanimity"
  | Broadcast p -> Printf.sprintf "broadcast(%s)" (Proc_id.to_string p)
  | Threshold k -> Printf.sprintf "threshold(%d)" k
  | Subset s -> Printf.sprintf "set{%s}" (String.concat "," (List.map Proc_id.to_string s))
  | Any_input -> "any-input"

let pp ppf t = Format.pp_print_string ppf (to_string t)
