open Patterns_sim

type nmsg = Bit of bool | Decision_msg of Decision.t

let compare_nmsg a b =
  match (a, b) with
  | Bit x, Bit y -> Bool.compare x y
  | Decision_msg x, Decision_msg y -> Decision.compare x y
  | Bit _, Decision_msg _ -> -1
  | Decision_msg _, Bit _ -> 1

let pp_nmsg ppf = function
  | Bit b -> Format.fprintf ppf "bit(%d)" (if b then 1 else 0)
  | Decision_msg d -> Format.fprintf ppf "decision(%a)" Decision.pp d

type phase =
  | Gather of { waiting : Proc_id.Set.t; bit : bool }
  | Wait_decision
  | Done of Decision.t

type nstate = { outbox : nmsg Outbox.t; phase : phase; input : bool }

let hash_phase = function
  | Gather { waiting; bit } -> ((Proc_id.set_hash waiting * 2) + Bool.to_int bit) * 4
  | Wait_decision -> 1
  | Done d -> (Hashtbl.hash d * 4) + 2

let hash_nstate s =
  (((Hashtbl.hash s.outbox * 31) + hash_phase s.phase) * 2) + Bool.to_int s.input

module Make_base (Cfg : sig
  val tree : Tree.t
  val name : string
end) : Commit_glue.BASE with type nmsg = nmsg = struct
  type nonrec nstate = nstate
  type nonrec nmsg = nmsg

  let name = Cfg.name
  let describe = "tree-of-processes 2PC ([ML]): votes up, decision down, WT-IC"
  let amnesic_variant = false
  let valid_n n = n = Tree.size Cfg.tree

  let tree = Cfg.tree
  let root = Tree.root tree

  let initial ~n:_ ~me ~input =
    match Tree.children tree me with
    | [] ->
      let parent = Option.get (Tree.parent tree me) in
      { outbox = [ (parent, Bit input) ]; phase = Wait_decision; input }
    | children ->
      { outbox = []; phase = Gather { waiting = Proc_id.set_of_list children; bit = input }; input }

  let step_kind s =
    if not (Outbox.is_empty s.outbox) then Step_kind.Sending
    else
      match s.phase with
      | Gather _ | Wait_decision -> Step_kind.Receiving
      | Done _ -> Step_kind.Receiving (* weak termination: stay available *)

  let send ~n:_ ~me:_ s =
    match Outbox.pop s.outbox with
    | None -> (None, s)
    | Some (out, rest) -> (Some out, { s with outbox = rest })

  (* subtree vote complete: the root decides and floods downward;
     interior nodes report upward *)
  let finish_gather s me bit =
    if Proc_id.equal me root then
      let d = if bit then Decision.Commit else Decision.Abort in
      {
        s with
        outbox = Outbox.broadcast Outbox.empty (Tree.children tree me) (Decision_msg d);
        phase = Done d;
      }
    else
      let parent = Option.get (Tree.parent tree me) in
      { s with outbox = [ (parent, Bit bit) ]; phase = Wait_decision }

  let receive ~n:_ ~me s ~from msg =
    match (s.phase, msg) with
    | Gather { waiting; bit }, Bit b when Proc_id.Set.mem from waiting ->
      let waiting = Proc_id.Set.remove from waiting in
      let bit = bit && b in
      if Proc_id.Set.is_empty waiting then finish_gather s me bit
      else { s with phase = Gather { waiting; bit } }
    | Wait_decision, Decision_msg d ->
      {
        s with
        outbox = Outbox.broadcast Outbox.empty (Tree.children tree me) (Decision_msg d);
        phase = Done d;
      }
    | (Gather _ | Wait_decision | Done _), _ -> s

  let bias_of s =
    match s.phase with
    | Done Decision.Commit -> Termination_core.Committable
    | Done Decision.Abort | Gather _ | Wait_decision -> Termination_core.Noncommittable

  (* a failed child counts as a 0 vote (abort is permitted once a
     failure has occurred) *)
  let on_failure ~n:_ ~me s q =
    match s.phase with
    | Gather { waiting; bit = _ } when Proc_id.Set.mem q waiting ->
      let waiting = Proc_id.Set.remove q waiting in
      if Proc_id.Set.is_empty waiting then `Continue (finish_gather s me false)
      else `Continue { s with phase = Gather { waiting; bit = false } }
    | Gather _ | Wait_decision | Done _ -> `Join (bias_of s)

  let on_term_msg ~n:_ ~me:_ s = `Join (bias_of s)
  let term_translate (_ : nmsg) = `Ignore
  let known_halted _ = []

  (* like the chain, nodes decide before forwarding — the WT-IC
     signature move *)
  let status s =
    match s.phase with
    | Done d -> Status.decided d
    | Gather _ | Wait_decision -> Status.undecided

  let compare_phase a b =
    match (a, b) with
    | Gather a, Gather b ->
      let c = Proc_id.Set.compare a.waiting b.waiting in
      if c <> 0 then c else Bool.compare a.bit b.bit
    | Wait_decision, Wait_decision -> 0
    | Done a, Done b -> Decision.compare a b
    | Gather _, (Wait_decision | Done _) -> -1
    | Wait_decision, Gather _ -> 1
    | Wait_decision, Done _ -> -1
    | Done _, (Gather _ | Wait_decision) -> 1

  let hash_nstate = hash_nstate

  let compare_nstate a b =
    let c = Outbox.compare ~cmp_msg:compare_nmsg a.outbox b.outbox in
    if c <> 0 then c
    else
      let c = compare_phase a.phase b.phase in
      if c <> 0 then c else Bool.compare a.input b.input

  let pp_nstate ppf s =
    let pp_phase ppf = function
      | Gather { waiting; bit } ->
        Format.fprintf ppf "gather(bit=%d,wait=%a)" (if bit then 1 else 0) Proc_id.pp_set waiting
      | Wait_decision -> Format.pp_print_string ppf "wait-decision"
      | Done d -> Format.fprintf ppf "done(%a)" Decision.pp d
    in
    Format.fprintf ppf "%a%s" pp_phase s.phase
      (if Outbox.is_empty s.outbox then ""
       else Format.asprintf "+outbox%a" (Outbox.pp ~pp_msg:pp_nmsg) s.outbox)

  let compare_nmsg = compare_nmsg
  let pp_nmsg = pp_nmsg
end

let make ~name tree =
  let module B = Make_base (struct
    let tree = tree
    let name = name
  end) in
  let module P = Commit_glue.Make (B) in
  (module P : Protocol.S)

let binary7 = make ~name:"tree-2pc" (Tree.binary 7)

let star n = make ~name:(Printf.sprintf "tree-2pc-star-%d" n) (Tree.star n)
