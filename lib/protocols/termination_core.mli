(** The Appendix termination protocol, as an embeddable component.

    Invoked from any configuration of a safe protocol (Theorem 7), it
    establishes WT-TC in [N] rounds: each round, broadcast
    [(round, bias)] to the processors still thought up, collect the
    round's messages from them (removing processors whose failure
    notices arrive), and upgrade to [committable] whenever a
    committable bias is received.  After round [N], commit iff the
    bias is committable.

    Host protocols embed a [t] in their state and enter it when they
    detect a failure or receive a termination message from a peer
    that did.  The strong-termination variant of Corollary 11 is also
    supported: an amnesic processor announces amnesia instead of a
    bias, and is deleted from its peers' UP sets. *)

open Patterns_sim

type bias = Committable | Noncommittable

val bias_equal : bias -> bias -> bool
val pp_bias : Format.formatter -> bias -> unit

type msg =
  | Round of { round : int; bias : bias }
  | Amnesic_notice  (** ST variant: "I have decided and forgotten" *)

val compare_msg : msg -> msg -> int
val pp_msg : Format.formatter -> msg -> unit

type t

val start : n:int -> me:Proc_id.t -> up:Proc_id.Set.t -> bias:bias -> t
(** Join the termination protocol.  [up] is the host's current UP set
    (it may or may not contain [me]; [me] is ignored).  [n] is the
    total number of participating processors — the round count. *)

val start_amnesic : n:int -> me:Proc_id.t -> up:Proc_id.Set.t -> t
(** Join as an amnesic processor: broadcast [Amnesic_notice] once and
    finish. *)

val step_kind : t -> Step_kind.t
(** [Sending] while broadcast messages remain queued, [Receiving]
    while collecting a round, [Quiescent] when finished. *)

val send : t -> (Proc_id.t * msg) option * t
(** Next queued broadcast message.  Call only when [step_kind] is
    [Sending]. *)

val on_msg : t -> from:Proc_id.t -> msg -> t
(** Process a peer's termination message (any phase; future rounds are
    stashed, stale rounds ignored, finished states absorb). *)

val on_failure : t -> Proc_id.t -> t
(** Process the failure notice for a processor. *)

val upgrade_committable : t -> t
(** Force the bias to committable — used when a commit decision is
    learned out-of-band (the "modified" termination protocol of
    Figure 2 classifies decision messages as committable). *)

val finished : t -> bool

val outcome : t -> Decision.t option
(** [Some d] once finished (non-amnesic participants); amnesic
    participants finish with [None]. *)

val bias_of : t -> bias

val up_of : t -> Proc_id.Set.t

val compare : t -> t -> int

val hash : t -> int
(** Consistent with {!compare}; hashes the embedded sets canonically. *)

val pp : Format.formatter -> t -> unit
