open Patterns_sim

module P : Protocol.S with type state = Termination_core.t and type msg = Termination_core.msg =
struct
  type state = Termination_core.t
  type msg = Termination_core.msg

  let name = "termination"
  let describe = "Appendix termination protocol run standalone (threshold-1; Theorem 7's O(N^2))"
  let valid_n n = n >= 2

  let initial ~n ~me ~input =
    let bias =
      if input then Termination_core.Committable else Termination_core.Noncommittable
    in
    Termination_core.start ~n ~me ~up:(Proc_id.set_of_list (Proc_id.all ~n)) ~bias

  let step_kind = Termination_core.step_kind

  let send ~n:_ ~me:_ s = Termination_core.send s

  let receive ~n:_ ~me:_ s incoming =
    match incoming with
    | Incoming.Msg { from; payload } -> Termination_core.on_msg s ~from payload
    | Incoming.Failed q -> Termination_core.on_failure s q

  let status s =
    match Termination_core.outcome s with
    | Some d -> Status.decided_halted d (* the protocol ends with "halt" *)
    | None -> Status.undecided

  let compare_state = Termination_core.compare
  let hash_state = Termination_core.hash
  let pp_state = Termination_core.pp
  let compare_msg = Termination_core.compare_msg
  let pp_msg = Termination_core.pp_msg
end

let default = (module P : Protocol.S)
