(** Ben-Or's randomized binary consensus, derandomized for hunting.

    The classic two-phase round structure (Ben-Or, PODC 1983):
    every round each processor reports its estimate, waits for
    [n - t] reports ([t = (n - 1) / 2]), proposes the strict-majority
    value or the placeholder, waits for [n - t] proposals, then
    decides a value proposed [t + 1] times, adopts any proposed
    value, or falls back to the coin.  Rounds are capped (the cap is
    in [describe]); a processor that reaches the cap halts, decided
    or not.

    Failure notices are deliberately ignored — progress rests on
    counting messages, never on failure detection — so the protocol
    behaves identically under fail-stop and omission adversaries,
    which is exactly the comparison the widened fault model is for.

    The coin is a deterministic {e common} coin: round [r]'s flip is
    the parity of a SplitMix-style hash of [(seed, r)] — a pure
    function of public data, visible to the adversary.  Hunts over
    this protocol are therefore per-index deterministic and
    certificates replay bit for bit. *)

open Patterns_sim

type msg

val make : name:string -> seed:int -> (module Protocol.S)
(** [seed] parameterizes the common coin. *)

val default : (module Protocol.S)
(** ["ben-or"], coin seed 0. *)

val coin : seed:int -> int -> bool
(** The public coin: [coin ~seed round].  Exposed so tests and docs
    can show the adversary exactly what the protocol will flip. *)
