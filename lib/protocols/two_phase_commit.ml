open Patterns_sim

type nmsg = Vote of bool | Decision_msg of Decision.t

let compare_nmsg a b =
  match (a, b) with
  | Vote x, Vote y -> Bool.compare x y
  | Decision_msg x, Decision_msg y -> Decision.compare x y
  | Vote _, Decision_msg _ -> -1
  | Decision_msg _, Vote _ -> 1

let pp_nmsg ppf = function
  | Vote b -> Format.fprintf ppf "vote(%d)" (if b then 1 else 0)
  | Decision_msg d -> Format.fprintf ppf "decision(%a)" Decision.pp d

type phase =
  | Collect of Vote_collect.t  (* coordinator *)
  | Wait_decision  (* participant *)
  | Done of Decision.t

type nstate = { outbox : nmsg Outbox.t; phase : phase; input : bool; coord : bool }

let hash_phase = function
  | Collect vc -> Vote_collect.hash vc * 4
  | Wait_decision -> 1
  | Done d -> (Hashtbl.hash d * 4) + 2

let hash_nstate s =
  ((((((Hashtbl.hash s.outbox * 31) + hash_phase s.phase) * 2) + Bool.to_int s.input) * 2)
  + Bool.to_int s.coord)

let coordinator : Proc_id.t = 0

module Make_base (Cfg : sig
  val rule : Decision_rule.t
  val name : string
end) : Commit_glue.BASE with type nmsg = nmsg = struct
  type nonrec nstate = nstate
  type nonrec nmsg = nmsg

  let name = Cfg.name

  let describe =
    Printf.sprintf "classic two-phase commit, Appendix-protocol fallback (%s)"
      (Decision_rule.to_string Cfg.rule)

  let amnesic_variant = false
  let valid_n n = n >= 2

  let initial ~n ~me ~input =
    if Proc_id.equal me coordinator then
      {
        outbox = Outbox.empty;
        phase = Collect (Vote_collect.start (Proc_id.others ~n me));
        input;
        coord = true;
      }
    else { outbox = [ (coordinator, Vote input) ]; phase = Wait_decision; input; coord = false }

  let step_kind s =
    if not (Outbox.is_empty s.outbox) then Step_kind.Sending
    else
      match s.phase with
      | Collect _ | Wait_decision -> Step_kind.Receiving
      | Done _ ->
        (* the coordinator halts after its broadcast; participants
           stay up to serve termination queries *)
        if s.coord then Step_kind.Quiescent else Step_kind.Receiving

  let send ~n:_ ~me:_ s =
    match Outbox.pop s.outbox with
    | None -> (None, s)
    | Some (out, rest) -> (Some out, { s with outbox = rest })

  (* the coordinator decides as soon as collection completes — before
     broadcasting: the classic 2PC window of vulnerability *)
  let finish_collect ~n ~me s vc =
    let decision = Vote_collect.decide ~rule:Cfg.rule ~n ~me ~own:s.input vc in
    {
      s with
      outbox = Outbox.broadcast Outbox.empty (Proc_id.others ~n me) (Decision_msg decision);
      phase = Done decision;
    }

  let receive ~n ~me s ~from msg =
    match (s.phase, msg) with
    | Collect vc, Vote b when Vote_collect.awaiting vc from ->
      let vc = Vote_collect.add_bit vc from b in
      if Vote_collect.complete vc then finish_collect ~n ~me s vc
      else { s with phase = Collect vc }
    | Wait_decision, Decision_msg d -> { s with phase = Done d }
    | (Collect _ | Wait_decision | Done _), _ -> s

  let bias_of s =
    match s.phase with
    | Done Decision.Commit -> Termination_core.Committable
    | Done Decision.Abort | Collect _ | Wait_decision -> Termination_core.Noncommittable

  let on_failure ~n ~me s q =
    match s.phase with
    | Collect vc when Vote_collect.awaiting vc q ->
      let vc = Vote_collect.note_failure vc q in
      if Vote_collect.complete vc then `Continue (finish_collect ~n ~me s vc)
      else `Continue { s with phase = Collect vc }
    | Collect _ -> `Continue s
    | Wait_decision | Done _ ->
      if Proc_id.equal me coordinator then `Continue s (* it halts; never joins *)
      else `Join (bias_of s)

  let on_term_msg ~n:_ ~me s =
    match s.phase with
    | Collect _ -> `Ignore
    | Wait_decision | Done _ ->
      if Proc_id.equal me coordinator then `Ignore else `Join (bias_of s)

  let term_translate = function
    | Decision_msg d -> `Peer_decided d (* decisions come from the halting coordinator *)
    | Vote _ -> `Ignore

  (* a participant that has processed the coordinator's decision knows
     the coordinator halted; waiting for its termination rounds would
     deadlock *)
  let known_halted s =
    match s.phase with
    | Done _ when not s.coord -> [ coordinator ]
    | Done _ | Collect _ | Wait_decision -> []

  let status s =
    match s.phase with
    | Done d when s.coord && Outbox.is_empty s.outbox -> Status.decided_halted d
    | Done d -> Status.decided d
    | Collect _ | Wait_decision -> Status.undecided

  let compare_phase a b =
    match (a, b) with
    | Collect a, Collect b -> Vote_collect.compare a b
    | Wait_decision, Wait_decision -> 0
    | Done a, Done b -> Decision.compare a b
    | Collect _, (Wait_decision | Done _) -> -1
    | Wait_decision, Collect _ -> 1
    | Wait_decision, Done _ -> -1
    | Done _, (Collect _ | Wait_decision) -> 1

  let hash_nstate = hash_nstate

  let compare_nstate a b =
    let c = Outbox.compare ~cmp_msg:compare_nmsg a.outbox b.outbox in
    if c <> 0 then c
    else
      let c = compare_phase a.phase b.phase in
      if c <> 0 then c
      else
        let c = Bool.compare a.input b.input in
        if c <> 0 then c else Bool.compare a.coord b.coord

  let pp_nstate ppf s =
    let pp_phase ppf = function
      | Collect vc -> Vote_collect.pp ppf vc
      | Wait_decision -> Format.pp_print_string ppf "wait-decision"
      | Done d -> Format.fprintf ppf "done(%a)" Decision.pp d
    in
    Format.fprintf ppf "%a%s" pp_phase s.phase
      (if Outbox.is_empty s.outbox then ""
       else Format.asprintf "+outbox%a" (Outbox.pp ~pp_msg:pp_nmsg) s.outbox)

  let compare_nmsg = compare_nmsg
  let pp_nmsg = pp_nmsg
end

let make ~rule ~name =
  let module B = Make_base (struct
    let rule = rule
    let name = name
  end) in
  let module P = Commit_glue.Make (B) in
  (module P : Protocol.S)

let default = make ~rule:Decision_rule.Unanimity ~name:"2pc"
