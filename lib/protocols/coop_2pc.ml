open Patterns_sim

type msg =
  | Vote of bool
  | Decision_msg of Decision.t
  | Dreq  (** "do you know the decision?" *)
  | Dreply of Decision.t
  | Uncertain_reply

let msg_rank = function
  | Vote _ -> 0 | Decision_msg _ -> 1 | Dreq -> 2 | Dreply _ -> 3 | Uncertain_reply -> 4

let compare_msg a b =
  match (a, b) with
  | Vote x, Vote y -> Bool.compare x y
  | Decision_msg x, Decision_msg y | Dreply x, Dreply y -> Decision.compare x y
  | Dreq, Dreq | Uncertain_reply, Uncertain_reply -> 0
  | (Vote _ | Decision_msg _ | Dreq | Dreply _ | Uncertain_reply), _ ->
    Int.compare (msg_rank a) (msg_rank b)

let pp_msg ppf = function
  | Vote b -> Format.fprintf ppf "vote(%d)" (if b then 1 else 0)
  | Decision_msg d -> Format.fprintf ppf "decision(%a)" Decision.pp d
  | Dreq -> Format.pp_print_string ppf "decision-request"
  | Dreply d -> Format.fprintf ppf "decision-reply(%a)" Decision.pp d
  | Uncertain_reply -> Format.pp_print_string ppf "uncertain"

type phase =
  | Collect of Vote_collect.t  (** coordinator *)
  | Wait_decision  (** participant, before asking *)
  | Querying of { waiting : Proc_id.Set.t }  (** asked the peers *)
  | Blocked  (** every operational peer is uncertain too *)
  | Done of Decision.t

type state = {
  outbox : msg Outbox.t;
  phase : phase;
  input : bool;
  coord : bool;
  pending : Proc_id.Set.t;  (** uncertain peers to answer if we ever learn *)
}

let hash_phase = function
  | Collect vc -> Vote_collect.hash vc * 8
  | Wait_decision -> 1
  | Querying { waiting } -> (Proc_id.set_hash waiting * 8) + 2
  | Blocked -> 3
  | Done d -> (Hashtbl.hash d * 8) + 4

let hash_state s =
  let h = (Hashtbl.hash s.outbox * 31) + hash_phase s.phase in
  let h = (((h * 2) + Bool.to_int s.input) * 2) + Bool.to_int s.coord in
  (h * 31) + Proc_id.set_hash s.pending

let coordinator : Proc_id.t = 0

module Make (Cfg : sig
  val rule : Decision_rule.t
  val name : string
end) : Protocol.S = struct
  type nonrec state = state
  type nonrec msg = msg

  let name = Cfg.name

  let describe =
    Printf.sprintf "2PC with cooperative termination ([S81]) — blocking (%s)"
      (Decision_rule.to_string Cfg.rule)

  let valid_n n = n >= 3 (* with one participant there is nobody to ask *)

  let initial ~n ~me ~input =
    if Proc_id.equal me coordinator then
      {
        outbox = Outbox.empty;
        phase = Collect (Vote_collect.start (Proc_id.others ~n me));
        input;
        coord = true;
        pending = Proc_id.Set.empty;
      }
    else
      {
        outbox = [ (coordinator, Vote input) ];
        phase = Wait_decision;
        input;
        coord = false;
        pending = Proc_id.Set.empty;
      }

  let step_kind s =
    if not (Outbox.is_empty s.outbox) then Step_kind.Sending
    else
      match s.phase with
      | Collect _ | Wait_decision | Querying _ | Blocked -> Step_kind.Receiving
      | Done _ -> if s.coord then Step_kind.Quiescent else Step_kind.Receiving

  let send ~n:_ ~me:_ s =
    match Outbox.pop s.outbox with
    | None -> (None, s)
    | Some (out, rest) -> (Some out, { s with outbox = rest })

  let participants ~n me =
    List.filter (fun q -> not (Proc_id.equal q coordinator)) (Proc_id.others ~n me)

  (* learning the decision: decide and answer every stored request *)
  let learn s d =
    let replies =
      List.map (fun q -> (q, Dreply d)) (Proc_id.Set.elements s.pending)
    in
    { s with outbox = s.outbox @ replies; phase = Done d; pending = Proc_id.Set.empty }

  let finish_collect ~n ~me s vc =
    let decision = Vote_collect.decide ~rule:Cfg.rule ~n ~me ~own:s.input vc in
    {
      s with
      outbox = Outbox.broadcast Outbox.empty (Proc_id.others ~n me) (Decision_msg decision);
      phase = Done decision;
    }

  let receive ~n ~me s incoming =
    match incoming with
    | Incoming.Msg { from; payload } -> (
      match (s.phase, payload) with
      (* coordinator *)
      | Collect vc, Vote b when Vote_collect.awaiting vc from ->
        let vc = Vote_collect.add_bit vc from b in
        if Vote_collect.complete vc then finish_collect ~n ~me s vc
        else { s with phase = Collect vc }
      (* participants *)
      | (Wait_decision | Querying _ | Blocked), Decision_msg d -> learn s d
      | (Wait_decision | Querying _ | Blocked), Dreply d -> learn s d
      | (Wait_decision | Querying _ | Blocked), Dreq ->
        (* uncertain ourselves: say so, and remember to answer later *)
        {
          s with
          outbox = Outbox.push s.outbox from Uncertain_reply;
          pending = Proc_id.Set.add from s.pending;
        }
      | Querying { waiting }, Uncertain_reply ->
        let waiting = Proc_id.Set.remove from waiting in
        if Proc_id.Set.is_empty waiting then { s with phase = Blocked }
        else { s with phase = Querying { waiting } }
      | Done d, Dreq -> { s with outbox = Outbox.push s.outbox from (Dreply d) }
      | _, (Vote _ | Decision_msg _ | Dreq | Dreply _ | Uncertain_reply) -> s)
    | Incoming.Failed q -> (
      match s.phase with
      | Collect vc when Vote_collect.awaiting vc q ->
        let vc = Vote_collect.note_failure vc q in
        if Vote_collect.complete vc then finish_collect ~n ~me s vc
        else { s with phase = Collect vc }
      | Wait_decision when Proc_id.equal q coordinator ->
        (* the uncertain window: ask the other participants *)
        let peers = participants ~n me in
        {
          s with
          outbox = Outbox.broadcast s.outbox peers Dreq;
          phase = Querying { waiting = Proc_id.set_of_list peers };
        }
      | Querying { waiting } ->
        let waiting = Proc_id.Set.remove q waiting in
        if Proc_id.Set.is_empty waiting then { s with phase = Blocked }
        else { s with phase = Querying { waiting } }
      | Collect _ | Wait_decision | Blocked | Done _ -> s)

  let status s =
    match s.phase with
    | Done d when s.coord && Outbox.is_empty s.outbox -> Status.decided_halted d
    | Done d -> Status.decided d
    | Collect _ | Wait_decision | Querying _ | Blocked -> Status.undecided

  let compare_phase a b =
    match (a, b) with
    | Collect x, Collect y -> Vote_collect.compare x y
    | Querying x, Querying y -> Proc_id.Set.compare x.waiting y.waiting
    | Wait_decision, Wait_decision | Blocked, Blocked -> 0
    | Done x, Done y -> Decision.compare x y
    | (Collect _ | Wait_decision | Querying _ | Blocked | Done _), _ ->
      let rank = function
        | Collect _ -> 0 | Wait_decision -> 1 | Querying _ -> 2 | Blocked -> 3 | Done _ -> 4
      in
      Int.compare (rank a) (rank b)

  let hash_state = hash_state

  let compare_state a b =
    let c = Outbox.compare ~cmp_msg:compare_msg a.outbox b.outbox in
    if c <> 0 then c
    else
      let c = compare_phase a.phase b.phase in
      if c <> 0 then c
      else
        let c = Bool.compare a.input b.input in
        if c <> 0 then c
        else
          let c = Bool.compare a.coord b.coord in
          if c <> 0 then c else Proc_id.Set.compare a.pending b.pending

  let pp_state ppf s =
    let pp_phase ppf = function
      | Collect vc -> Vote_collect.pp ppf vc
      | Wait_decision -> Format.pp_print_string ppf "wait-decision"
      | Querying { waiting } -> Format.fprintf ppf "querying(wait=%a)" Proc_id.pp_set waiting
      | Blocked -> Format.pp_print_string ppf "BLOCKED"
      | Done d -> Format.fprintf ppf "done(%a)" Decision.pp d
    in
    Format.fprintf ppf "%a%s" pp_phase s.phase
      (if Outbox.is_empty s.outbox then ""
       else Format.asprintf "+outbox%a" (Outbox.pp ~pp_msg) s.outbox)

  let compare_msg = compare_msg
  let pp_msg = pp_msg
end

let make ~rule ~name =
  let module P = Make (struct
    let rule = rule
    let name = name
  end) in
  (module P : Protocol.S)

let default = make ~rule:Decision_rule.Unanimity ~name:"coop-2pc"
