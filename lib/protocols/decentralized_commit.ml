open Patterns_sim

type nmsg = Vote of bool

let compare_nmsg (Vote a) (Vote b) = Bool.compare a b

let pp_nmsg ppf (Vote b) = Format.fprintf ppf "vote(%d)" (if b then 1 else 0)

type phase = Collect of Vote_collect.t | Done of Decision.t

type nstate = { outbox : nmsg Outbox.t; phase : phase; input : bool }

let hash_phase = function
  | Collect vc -> Vote_collect.hash vc * 2
  | Done d -> (Hashtbl.hash d * 2) + 1

let hash_nstate s =
  (((Hashtbl.hash s.outbox * 31) + hash_phase s.phase) * 2) + Bool.to_int s.input

module Make_base (Cfg : sig
  val rule : Decision_rule.t
  val name : string
end) : Commit_glue.BASE with type nmsg = nmsg = struct
  type nonrec nstate = nstate
  type nonrec nmsg = nmsg

  let name = Cfg.name

  let describe =
    Printf.sprintf "decentralized commit: all-to-all votes (%s)" (Decision_rule.to_string Cfg.rule)

  let amnesic_variant = false
  let valid_n n = n >= 2

  let initial ~n ~me ~input =
    {
      outbox = Outbox.broadcast Outbox.empty (Proc_id.others ~n me) (Vote input);
      phase = Collect (Vote_collect.start (Proc_id.others ~n me));
      input;
    }

  let step_kind s =
    if not (Outbox.is_empty s.outbox) then Step_kind.Sending
    else
      match s.phase with
      | Collect _ -> Step_kind.Receiving
      | Done _ -> Step_kind.Receiving (* weak termination *)

  let send ~n:_ ~me:_ s =
    match Outbox.pop s.outbox with
    | None -> (None, s)
    | Some (out, rest) -> (Some out, { s with outbox = rest })

  let finish ~n ~me s vc =
    { s with phase = Done (Vote_collect.decide ~rule:Cfg.rule ~n ~me ~own:s.input vc) }

  let receive ~n ~me s ~from msg =
    match (s.phase, msg) with
    | Collect vc, Vote b when Vote_collect.awaiting vc from ->
      let vc = Vote_collect.add_bit vc from b in
      if Vote_collect.complete vc then finish ~n ~me s vc else { s with phase = Collect vc }
    | (Collect _ | Done _), _ -> s

  let bias_of s =
    match s.phase with
    | Done Decision.Commit -> Termination_core.Committable
    | Done Decision.Abort | Collect _ -> Termination_core.Noncommittable

  let on_failure ~n:_ ~me:_ s _q = `Join (bias_of s)
  let on_term_msg ~n:_ ~me:_ s = `Join (bias_of s)

  let term_translate (Vote _) = `Ignore
  let known_halted _ = []

  let status s =
    match s.phase with Done d -> Status.decided d | Collect _ -> Status.undecided

  let compare_phase a b =
    match (a, b) with
    | Collect a, Collect b -> Vote_collect.compare a b
    | Done a, Done b -> Decision.compare a b
    | Collect _, Done _ -> -1
    | Done _, Collect _ -> 1

  let hash_nstate = hash_nstate

  let compare_nstate a b =
    let c = Outbox.compare ~cmp_msg:compare_nmsg a.outbox b.outbox in
    if c <> 0 then c
    else
      let c = compare_phase a.phase b.phase in
      if c <> 0 then c else Bool.compare a.input b.input

  let pp_nstate ppf s =
    let pp_phase ppf = function
      | Collect vc -> Vote_collect.pp ppf vc
      | Done d -> Format.fprintf ppf "done(%a)" Decision.pp d
    in
    Format.fprintf ppf "%a%s" pp_phase s.phase
      (if Outbox.is_empty s.outbox then ""
       else Format.asprintf "+outbox%a" (Outbox.pp ~pp_msg:pp_nmsg) s.outbox)

  let compare_nmsg = compare_nmsg
  let pp_nmsg = pp_nmsg
end

let make ~rule ~name =
  let module B = Make_base (struct
    let rule = rule
    let name = name
  end) in
  let module P = Commit_glue.Make (B) in
  (module P : Protocol.S)

let default = make ~rule:Decision_rule.Unanimity ~name:"d2pc"
