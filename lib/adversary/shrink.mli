(** Counterexample shrinking.

    Minimize a violation certificate while preserving the violation:
    delta-debugging (ddmin) over the directive script with a
    crash-closure (dropping a [Fail_now] also drops the now-orphaned
    failure notices), chronological suffix truncation, instance-size
    reduction (drop the top processor while nothing references it),
    and input canonicalization (1-bits flipped to 0).  Every candidate
    is re-validated by a full {!Replay} of the {e same} property — a
    shrink step that stops reproducing the violation is discarded, so
    the result is a certificate that still replays with exit 0. *)

type report = {
  cert : Cert.t;  (** the minimized certificate; still reproduces *)
  original_directives : int;
  original_n : int;
  replays : int;  (** replays spent validating candidates *)
}

val shrink : ?db:Patterns_db.Db.t -> Cert.t -> (report, string) result
(** [Error] when the input certificate does not itself reproduce
    (nothing to shrink) or names an unknown protocol.  The returned
    certificate's [message] is the violation report of the {e shrunk}
    run.  [?db] threads an execution database into every candidate
    replay (see {!Replay.replay}): already-recorded candidates are
    re-verified from the index with zero engine plays, fresh ones are
    recorded.  [replays] counts candidate validations either way, so
    the shrink trajectory — and the resulting certificate — is
    identical with and without a database. *)

val pp_report : Format.formatter -> report -> unit
