(** Certificate replay.

    Re-execute a violation certificate from its initial configuration
    through {!Patterns_sim.Engine}'s directive player and re-check the
    claimed property on the resulting trace.  Replay is deterministic
    — a script admits exactly one execution — and protocol-independent
    on this side: the certificate names its protocol and the registry
    supplies the module.

    With an execution database attached ([?db]), replay consults the
    recorded edge log first: the script is walked as point queries
    over the covering indexes (src and event bound at every step), and
    if the walk covers the whole script and a verdict fact for the
    resulting path fingerprint is stored, the verdict is returned with
    {e zero} engine plays and zero kernel expansions
    ([states_expanded = 0] in the returned metrics).  On any miss the
    engine replays live, the execution's edges are recorded stepwise
    into the database, and the verdict is stored as a fact — so the
    next replay of the same execution is answered from the index. *)

type verdict =
  | Reproduced of string
      (** the property is violated again; carries the checker's
          description of the (re-observed) violation *)
  | Not_reproduced
      (** the script played to completion but the property held *)
  | Inapplicable of string
      (** the certificate does not name a runnable execution here:
          unknown protocol, unsupported [n], or a directive that does
          not apply (e.g. the protocol's code changed) *)

val exit_code : verdict -> int
(** [0] reproduced, [1] not reproduced, [2] inapplicable — the
    [patterns replay] exit convention. *)

val pp : Format.formatter -> verdict -> unit

val replay : ?db:Patterns_db.Db.t -> Cert.t -> verdict

val replay_metrics : ?db:Patterns_db.Db.t -> Cert.t -> verdict * Patterns_search.Metrics.t
(** Like {!replay}, also returning a metrics record:
    [states_expanded] (= [budget_consumed]) counts live engine
    directive applications — [0] when the database answered — and the
    /6 fields carry the database counter deltas of this call
    ([db_edges] is the database's absolute edge count afterwards).
    All fields are deterministic for a given database state. *)
