(** Certificate replay.

    Re-execute a violation certificate from its initial configuration
    through {!Patterns_sim.Engine}'s directive player and re-check the
    claimed property on the resulting trace.  Replay is deterministic
    — a script admits exactly one execution — and protocol-independent
    on this side: the certificate names its protocol and the registry
    supplies the module. *)

type verdict =
  | Reproduced of string
      (** the property is violated again; carries the checker's
          description of the (re-observed) violation *)
  | Not_reproduced
      (** the script played to completion but the property held *)
  | Inapplicable of string
      (** the certificate does not name a runnable execution here:
          unknown protocol, unsupported [n], or a directive that does
          not apply (e.g. the protocol's code changed) *)

val exit_code : verdict -> int
(** [0] reproduced, [1] not reproduced, [2] inapplicable — the
    [patterns replay] exit convention. *)

val pp : Format.formatter -> verdict -> unit

val replay : Cert.t -> verdict
