(** Replayable violation certificates.

    A certificate is everything needed to re-execute a property
    violation from scratch, away from the machine that found it: the
    protocol (by registry name), the instance size and input vector,
    the violated property and decision rule, and the full schedule as
    a {!Patterns_sim.Script} — crashes included, as [Fail_now]
    directives.  [patterns replay] consumes the JSON form (schema
    [patterns-violation-cert/1]); [patterns hunt --cert] and
    [patterns shrink] produce it. *)

open Patterns_sim

type t = {
  protocol : string;  (** registry name, e.g. ["2pc"] *)
  n : int;
  inputs : bool list;  (** length [n] *)
  property : Patterns_core.Audit.property;
  rule : Patterns_protocols.Decision_rule.t;
  script : Script.directive list;
      (** the whole schedule, including [Fail_now] crash directives *)
  message : string;  (** the violation report of the run that produced it *)
}

val schema : string
(** ["patterns-violation-cert/1"]. *)

val crashes : t -> Proc_id.t list
(** The victims of the script's [Fail_now] directives, in script
    order — derived, also embedded in the JSON for human readers. *)

val property_string : Patterns_core.Audit.property -> string
val property_of_string : string -> (Patterns_core.Audit.property, string) result

val rule_string : Patterns_protocols.Decision_rule.t -> string
(** ["unanimity"], ["broadcast:0"], ["threshold:3"], ["subset:0,1"]. *)

val rule_of_string : string -> (Patterns_protocols.Decision_rule.t, string) result

val to_json : t -> Patterns_stdx.Json.t
val of_json : Patterns_stdx.Json.t -> (t, string) result
(** [Error] names the offending field; the ["crashes"] field is
    ignored on input (it is derived from the script). *)

val pp : Format.formatter -> t -> unit
(** One-line summary (protocol, property, size, crash and directive
    counts). *)
