(** Replayable violation certificates.

    A certificate is everything needed to re-execute a property
    violation from scratch, away from the machine that found it: the
    protocol (by registry name), the instance size and input vector,
    the violated property and decision rule, and the full schedule as
    a {!Patterns_sim.Script} — crashes included, as [Fail_now]
    directives, and omission faults as [Drop_msg] directives.
    [patterns replay] consumes the JSON form; [patterns hunt --cert]
    and [patterns shrink] produce it.

    Two schemas: [patterns-violation-cert/1] is the historical
    fail-stop form and is still what the writer emits for drop-free
    scripts (byte-identical to every certificate ever produced);
    [patterns-violation-cert/2] is emitted exactly when the script
    carries omission directives and adds an informational ["drops"]
    list.  The reader accepts both. *)

open Patterns_sim

type t = {
  protocol : string;  (** registry name, e.g. ["2pc"] *)
  n : int;
  inputs : bool list;  (** length [n] *)
  property : Patterns_core.Audit.property;
  rule : Patterns_protocols.Decision_rule.t;
  script : Script.directive list;
      (** the whole schedule, including [Fail_now] crash directives
          and [Drop_msg] omission directives *)
  message : string;  (** the violation report of the run that produced it *)
}

val schema_v1 : string
(** ["patterns-violation-cert/1"] — emitted for drop-free scripts. *)

val schema_v2 : string
(** ["patterns-violation-cert/2"] — emitted when the script carries
    omission directives. *)

val crashes : t -> Proc_id.t list
(** The victims of the script's [Fail_now] directives, in script
    order — derived, also embedded in the JSON for human readers. *)

val drops : t -> (Proc_id.t * Proc_id.t * int) list
(** The [(at, from, index)] triples of the script's [Drop_msg]
    directives, in script order — derived, embedded in /2 JSON. *)

val property_string : Patterns_core.Audit.property -> string
val property_of_string : string -> (Patterns_core.Audit.property, string) result

val rule_string : Patterns_protocols.Decision_rule.t -> string
(** ["unanimity"], ["broadcast:0"], ["threshold:3"], ["subset:0,1"]. *)

val rule_of_string : string -> (Patterns_protocols.Decision_rule.t, string) result

val to_json : t -> Patterns_stdx.Json.t
val of_json : Patterns_stdx.Json.t -> (t, string) result
(** [Error] names the offending field; the ["crashes"] and ["drops"]
    fields are ignored on input (they are derived from the script). *)

val pp : Format.formatter -> t -> unit
(** One-line summary (protocol, property, size, crash, drop and
    directive counts; the drop count appears only when non-zero). *)
