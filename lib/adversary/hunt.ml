open Patterns_sim
open Patterns_stdx

type mode = Random | Systematic

let mode_string = function Random -> "random" | Systematic -> "systematic"

let hunt ?metrics ?(max_failures = 2) ?(max_runs = 5_000) ?(fifo_notices = false)
    ?(jobs = 1) ?deadline ?(horizon = 60) ?(mode = Random) ~property ~rule ~n ~seed
    (entry : Patterns_protocols.Registry.entry) =
  let (module P : Protocol.S) = entry.Patterns_protocols.Registry.protocol in
  let module E = Engine.Make (P) in
  let verdict inputs (r : E.run_result) =
    let open Patterns_core in
    match (property : Audit.property) with
    | Audit.TC -> Check.total_consistency r.E.trace
    | Audit.IC -> Check.interactive_consistency r.E.trace
    | Audit.Agreement -> Check.nonfaulty_agreement r.E.trace
    | Audit.Rule -> Check.decision_rule rule ~inputs r.E.trace
    | Audit.WT ->
      let failed = Array.make n false in
      List.iter (fun p -> failed.(p) <- true) (Trace.failures r.E.trace);
      Check.weak_termination ~quiescent:r.E.quiescent ~statuses:(E.statuses r.E.final)
        ~ever_decided:(Check.ever_decided ~n r.E.trace) ~failed
  in
  let cert inputs message (r : E.run_result) =
    {
      Cert.protocol = entry.Patterns_protocols.Registry.name;
      n;
      inputs;
      property;
      rule;
      script = Script.of_trace r.E.trace;
      message;
    }
  in
  let bits inputs = String.concat "" (List.map (fun b -> if b then "1" else "0") inputs) in
  let crash_plan failures =
    String.concat ", " (List.map (fun (k, p) -> Printf.sprintf "p%d@step%d" p k) failures)
  in
  match mode with
  | Random ->
    (* The sampling adversary of {!Patterns_core.Audit.hunt},
       reproduced draw for draw (same per-run generator seeding, same
       draw order, same report) so the two entry points are
       interchangeable; this one additionally reads the schedule back
       off the winning trace into a replayable certificate. *)
    let one run_index =
      let prng = Prng.create ~seed:(seed + (run_index * 1_000_003)) in
      let inputs = List.init n (fun _ -> Prng.bool prng) in
      let n_failures = Prng.int prng ~bound:(max_failures + 1) in
      let failures =
        List.init n_failures (fun _ -> (Prng.int prng ~bound:60, Prng.int prng ~bound:n))
      in
      let scheduler =
        match Prng.int prng ~bound:3 with
        | 0 -> E.random_scheduler (Prng.split prng)
        | 1 -> E.notice_first_scheduler (Prng.split prng)
        | _ -> E.lifo_scheduler
      in
      let r = E.run ~failures ~fifo_notices ~scheduler ~n ~inputs () in
      match verdict inputs r with
      | Ok () -> None
      | Error msg ->
        let message =
          Format.asprintf
            "@[<v>violation after %d run(s) (seed %d)@,inputs: %s@,crash plan: %s@,%s@,@,%s@]"
            run_index seed (bits inputs) (crash_plan failures) msg
            (Patterns_pattern.Render.lanes ~pp_msg:P.pp_msg ~n r.E.trace)
        in
        Some (cert inputs message r)
    in
    Patterns_search.Search.find_first ?metrics ~jobs ?deadline ~max_index:max_runs ~f:one ()
  | Systematic ->
    let total = Plan.count ~horizon ~n ~max_failures in
    let max_index = min max_runs total in
    let one run_index =
      let plan = Plan.decode ~horizon ~n ~max_failures (run_index - 1) in
      let scheduler =
        match plan.Plan.flavour with
        | Plan.Fifo -> E.fifo_scheduler
        | Plan.Lifo -> E.lifo_scheduler
        | Plan.Round_robin ->
          fun ~step _config actions ->
            (match actions with
            | [] -> None
            | _ -> List.nth_opt actions (step mod List.length actions))
      in
      let r =
        E.run ~failures:plan.Plan.failures ~fifo_notices ~scheduler ~n
          ~inputs:plan.Plan.inputs ()
      in
      match verdict plan.Plan.inputs r with
      | Ok () -> None
      | Error msg ->
        let message =
          Format.asprintf
            "@[<v>violation at plan %d of %d (systematic, horizon %d)@,\
             inputs: %s@,crash plan: %s@,schedule: %s@,%s@,@,%s@]"
            run_index total horizon (bits plan.Plan.inputs)
            (crash_plan plan.Plan.failures)
            (Plan.flavour_string plan.Plan.flavour)
            msg
            (Patterns_pattern.Render.lanes ~pp_msg:P.pp_msg ~n r.E.trace)
        in
        Some (cert plan.Plan.inputs message r)
    in
    Patterns_search.Search.find_first ?metrics ~jobs ?deadline ~max_index ~f:one ()
