open Patterns_sim
open Patterns_stdx

type mode = Random | Systematic

let mode_string = function Random -> "random" | Systematic -> "systematic"

let property_string : Patterns_core.Audit.property -> string = function
  | Patterns_core.Audit.TC -> "tc"
  | Patterns_core.Audit.IC -> "ic"
  | Patterns_core.Audit.Agreement -> "agreement"
  | Patterns_core.Audit.WT -> "wt"
  | Patterns_core.Audit.Rule -> "rule"

(* Checkpoint granularity for hunts: the run-index space is cut into
   fixed chunks, each fully swept chunk recorded under its upper bound
   with the cumulative kernel metrics as payload.  Both modes are
   per-index deterministic — Random seeds a fresh generator from the
   run index, Systematic decodes the plan from it — so a contiguous
   cleared prefix plus its metrics is exactly the state a resume
   needs. *)
let chunk_size = 4_096

let hunt ?metrics ?(max_failures = 2) ?(max_runs = 5_000) ?(fifo_notices = false)
    ?(jobs = 1) ?deadline ?checkpoint ?(horizon = 60) ?(mode = Random) ?(memo = true)
    ?(space = Plan.Crash_only) ~property ~rule ~n ~seed
    (entry : Patterns_protocols.Registry.entry) =
  let (module P : Protocol.S) = entry.Patterns_protocols.Registry.protocol in
  let module E = Engine.Make (P) in
  let verdict inputs (r : E.run_result) =
    let open Patterns_core in
    match (property : Audit.property) with
    | Audit.TC -> Check.total_consistency r.E.trace
    | Audit.IC -> Check.interactive_consistency r.E.trace
    | Audit.Agreement -> Check.nonfaulty_agreement r.E.trace
    | Audit.Rule -> Check.decision_rule rule ~inputs r.E.trace
    | Audit.WT ->
      let failed = Array.make n false in
      List.iter (fun p -> failed.(p) <- true) (Trace.failures r.E.trace);
      Check.weak_termination ~quiescent:r.E.quiescent ~statuses:(E.statuses r.E.final)
        ~ever_decided:(Check.ever_decided ~n r.E.trace) ~failed
  in
  let cert inputs message (r : E.run_result) =
    {
      Cert.protocol = entry.Patterns_protocols.Registry.name;
      n;
      inputs;
      property;
      rule;
      script = Script.of_trace r.E.trace;
      message;
    }
  in
  let bits inputs = String.concat "" (List.map (fun b -> if b then "1" else "0") inputs) in
  let crash_plan failures =
    String.concat ", " (List.map (fun (k, p) -> Printf.sprintf "p%d@step%d" p k) failures)
  in
  let fault_plan faults =
    String.concat ", " (List.map (fun f -> Format.asprintf "%a" Fault.pp f) faults)
  in
  let mobile_faults = function
    | [] | [ _ ] -> false
    | (f : Fault.t) :: rest ->
      List.exists (fun (g : Fault.t) -> not (Proc_id.equal g.Fault.victim f.Fault.victim)) rest
  in
  (* Fault-injection tallies (the metrics /9 section), accumulated
     outside the kernel exactly like the systematic mode's prefix
     tallies and folded by the same [flush] mechanism.  All three stay
     0 under the crash-only space, so fail-stop metrics are unchanged
     field for field. *)
  let drops_tally = Atomic.make 0 in
  let om_plans_tally = Atomic.make 0 in
  let mobile_tally = Atomic.make 0 in
  let folded_drops = ref 0 and folded_om = ref 0 and folded_mobile = ref 0 in
  let fault_flush m =
    let d = Atomic.get drops_tally in
    let o = Atomic.get om_plans_tally in
    let mb = Atomic.get mobile_tally in
    let m =
      Patterns_search.Metrics.with_faults ~drops_injected:(d - !folded_drops)
        ~omission_plans:(o - !folded_om) ~mobile_faults:(mb - !folded_mobile) m
    in
    folded_drops := d;
    folded_om := o;
    folded_mobile := mb;
    m
  in
  let tally faults (r : E.run_result) =
    let d = Trace.drop_count r.E.trace in
    if d > 0 then ignore (Atomic.fetch_and_add drops_tally d : int);
    match faults with
    | [] -> ()
    | fs ->
      Atomic.incr om_plans_tally;
      if mobile_faults fs then
        ignore (Atomic.fetch_and_add mobile_tally (List.length fs) : int)
  in
  (* Single entry point for both modes: without a checkpoint the hunt
     is the kernel's one-shot goal search, unchanged; with one, the
     index space is swept chunk by chunk, each completed chunk
     recorded, and a resume replays the recorded prefix from the file
     (chunk upper bounds are deterministic, so the prefix is found by
     walking them).  The chunked sweep tries the same indices in the
     same order and returns the same winner and tried count as the
     one-shot search; the metrics differ only in shape (one root per
     chunk rather than one per hunt). *)
  (* [flush] folds counters the runs accumulate outside the kernel
     (the systematic mode's prefix-memoization tallies) into a metrics
     record; it is applied to the cumulative record before every
     checkpoint write — so a resumed hunt restores them — and once at
     the end for the caller's sink.  Called only between [find_first]
     rounds, after their workers have joined. *)
  let drive ?(flush = Fun.id) one ~max_index =
    match checkpoint with
    | None ->
      let result =
        Patterns_search.Search.find_first ?metrics ~jobs ?deadline ~max_index ~f:one ()
      in
      Patterns_search.Search.merge_into metrics (flush Patterns_search.Metrics.zero);
      result
    | Some spec ->
      let header =
        Printf.sprintf
          "hunt/2|%s|prop=%s|rule=%s|n=%d|seed=%d|mode=%s|faults=%s|mf=%d|mi=%d|h=%d|fifo=%b"
          entry.Patterns_protocols.Registry.name (property_string property)
          (Format.asprintf "%a" Patterns_protocols.Decision_rule.pp rule)
          n seed (mode_string mode) (Plan.space_string space) max_failures max_index horizon
          fifo_notices
      in
      let t =
        match Patterns_search.Checkpoint.create spec ~header with
        | Ok t -> t
        | Error msg -> failwith msg
      in
      let rec restore cleared m =
        if cleared >= max_index then (cleared, m)
        else
          let hi = min max_index (cleared + chunk_size) in
          match Patterns_search.Checkpoint.find t hi with
          | Some m' -> restore hi m'
          | None -> (cleared, m)
      in
      let cleared0, m0 = restore 0 Patterns_search.Metrics.zero in
      let local = ref m0 in
      let t0 = Unix.gettimeofday () in
      let remaining () =
        Option.map (fun d -> d -. (Unix.gettimeofday () -. t0)) deadline
      in
      let finish result =
        local := flush !local;
        Patterns_search.Search.merge_into metrics !local;
        result
      in
      let rec go cleared tried_acc =
        if cleared >= max_index then finish (Error tried_acc)
        else
          let hi = min max_index (cleared + chunk_size) in
          match
            Patterns_search.Search.find_first ~metrics:local ~jobs
              ?deadline:(remaining ()) ~start:(cleared + 1) ~max_index:hi ~f:one ()
          with
          | Ok cert -> finish (Ok cert)
          | Error tried when tried < hi - cleared ->
            (* the wall clock fired mid-chunk: an incomplete chunk is
               never recorded (its truncation point is wall-clock
               dependent), and there is nothing left to try now *)
            finish (Error (tried_acc + tried))
          | Error tried ->
            local := flush !local;
            Patterns_search.Checkpoint.record t hi !local;
            go hi (tried_acc + tried)
      in
      go cleared0 cleared0
  in
  match mode with
  | Random ->
    (* The sampling adversary of {!Patterns_core.Audit.hunt},
       reproduced draw for draw (same per-run generator seeding, same
       draw order, same report) so the two entry points are
       interchangeable; this one additionally reads the schedule back
       off the winning trace into a replayable certificate. *)
    let one run_index =
      let prng = Prng.create ~seed:(seed + (run_index * 1_000_003)) in
      let inputs = List.init n (fun _ -> Prng.bool prng) in
      let n_failures = Prng.int prng ~bound:(max_failures + 1) in
      let failures =
        List.init n_failures (fun _ -> (Prng.int prng ~bound:60, Prng.int prng ~bound:n))
      in
      (* Omission draws come after the historical crash draws, so the
         crash-only stream is untouched draw for draw.  The remaining
         fault budget goes to omission faults; the [Omission] space
         additionally pins them all to one drawn victim. *)
      let faults =
        match space with
        | Plan.Crash_only -> []
        | Plan.Omission | Plan.Mobile ->
          let budget = max_failures - n_failures in
          let n_om = if budget <= 0 then 0 else Prng.int prng ~bound:(budget + 1) in
          let static_victim = Prng.int prng ~bound:n in
          List.init n_om (fun _ ->
              let step = Prng.int prng ~bound:60 in
              let kind = if Prng.bool prng then Fault.Drop else Fault.Send_omit in
              let victim =
                match space with
                | Plan.Mobile -> Prng.int prng ~bound:n
                | Plan.Omission | Plan.Crash_only -> static_victim
              in
              { Fault.step; victim; kind })
      in
      let scheduler =
        match Prng.int prng ~bound:3 with
        | 0 -> E.random_scheduler (Prng.split prng)
        | 1 -> E.notice_first_scheduler (Prng.split prng)
        | _ -> E.lifo_scheduler
      in
      let r = E.run ~failures ~faults ~fifo_notices ~scheduler ~n ~inputs () in
      tally faults r;
      match verdict inputs r with
      | Ok () -> None
      | Error msg ->
        let message =
          match faults with
          | [] ->
            Format.asprintf
              "@[<v>violation after %d run(s) (seed %d)@,inputs: %s@,crash plan: %s@,%s@,@,%s@]"
              run_index seed (bits inputs) (crash_plan failures) msg
              (Patterns_pattern.Render.lanes ~pp_msg:P.pp_msg ~n r.E.trace)
          | fs ->
            Format.asprintf
              "@[<v>violation after %d run(s) (seed %d)@,inputs: %s@,crash plan: %s@,\
               fault plan: %s@,%s@,@,%s@]"
              run_index seed (bits inputs) (crash_plan failures) (fault_plan fs) msg
              (Patterns_pattern.Render.lanes ~pp_msg:P.pp_msg ~n r.E.trace)
        in
        Some (cert inputs message r)
    in
    drive ~flush:fault_flush one ~max_index:max_runs
  | Systematic ->
    let total = Plan.count ~space ~horizon ~n ~max_faults:max_failures () in
    let max_index = min max_runs total in
    (* Shared-prefix memoization: a plan's run equals the failure-free
       run of its (flavour, inputs) up to the plan's earliest crash
       step, and the plan space has only [3 * 2^n] such failure-free
       runs against millions of plans — so each is computed once (with
       per-step snapshots) and every plan resumes from its earliest
       crash boundary instead of replaying from the initial
       configuration.  The schedulers are pure functions of
       (step, config, actions), which is exactly the property
       {!E.resume}'s bit-identity rests on.  The table is tiny, so
       computing under the lock is cheaper than racing duplicate
       failure-free runs.  Per-index hits and saved steps are
       deterministic, so on a full sweep the tallies are
       jobs-invariant; a goal-found hunt overshoots the winner by a
       jobs-dependent set of speculative indices, the same caveat as
       [find_first]'s expanded count. *)
    let memo_tbl : (Plan.flavour * bool list, E.prefix) Hashtbl.t = Hashtbl.create 24 in
    let memo_lock = Mutex.create () in
    let prefix_of flavour scheduler inputs =
      Mutex.lock memo_lock;
      let p =
        match Hashtbl.find_opt memo_tbl (flavour, inputs) with
        | Some p -> p
        | None ->
          let p = E.run_prefix ~fifo_notices ~scheduler ~n ~inputs () in
          Hashtbl.add memo_tbl (flavour, inputs) p;
          p
      in
      Mutex.unlock memo_lock;
      p
    in
    let hits = Atomic.make 0 and saved_steps = Atomic.make 0 in
    let folded_hits = ref 0 and folded_saved = ref 0 in
    let flush m =
      let h = Atomic.get hits and s = Atomic.get saved_steps in
      let m =
        Patterns_search.Metrics.with_incremental ~prefix_hits:(h - !folded_hits)
          ~prefix_states_saved:(s - !folded_saved) m
      in
      folded_hits := h;
      folded_saved := s;
      fault_flush m
    in
    let one run_index =
      let plan =
        match Plan.decode ~space ~horizon ~n ~max_faults:max_failures (run_index - 1) with
        | Ok plan -> plan
        | Error e ->
          (* [Budget_exceeded] replaces the old silent saturation:
             indices past the exactly representable boundary are
             refused loudly rather than decoded into a wrong plan *)
          failwith
            (Printf.sprintf "hunt: systematic plan %d: %s" run_index (Plan.error_string e))
      in
      let scheduler =
        match plan.Plan.flavour with
        | Plan.Fifo -> E.fifo_scheduler
        | Plan.Lifo -> E.lifo_scheduler
        | Plan.Round_robin ->
          fun ~step _config actions ->
            (match actions with
            | [] -> None
            | _ -> List.nth_opt actions (step mod List.length actions))
      in
      let failures = Plan.crashes plan in
      let omissions = Plan.omissions plan in
      let r =
        if memo then begin
          let prefix = prefix_of plan.Plan.flavour scheduler plan.Plan.inputs in
          let r, saved =
            E.resume ~fifo_notices ~scheduler ~failures ~faults:omissions ~prefix ()
          in
          if saved > 0 then begin
            Atomic.incr hits;
            ignore (Atomic.fetch_and_add saved_steps saved : int)
          end;
          r
        end
        else
          E.run ~failures ~faults:omissions ~fifo_notices ~scheduler ~n
            ~inputs:plan.Plan.inputs ()
      in
      tally omissions r;
      match verdict plan.Plan.inputs r with
      | Ok () -> None
      | Error msg ->
        let message =
          match omissions with
          | [] ->
            Format.asprintf
              "@[<v>violation at plan %d of %d (systematic, horizon %d)@,\
               inputs: %s@,crash plan: %s@,schedule: %s@,%s@,@,%s@]"
              run_index total horizon (bits plan.Plan.inputs) (crash_plan failures)
              (Plan.flavour_string plan.Plan.flavour)
              msg
              (Patterns_pattern.Render.lanes ~pp_msg:P.pp_msg ~n r.E.trace)
          | _ ->
            Format.asprintf
              "@[<v>violation at plan %d of %d (systematic, horizon %d)@,\
               inputs: %s@,fault plan: %s@,schedule: %s@,%s@,@,%s@]"
              run_index total horizon (bits plan.Plan.inputs)
              (fault_plan plan.Plan.faults)
              (Plan.flavour_string plan.Plan.flavour)
              msg
              (Patterns_pattern.Render.lanes ~pp_msg:P.pp_msg ~n r.E.trace)
        in
        Some (cert plan.Plan.inputs message r)
    in
    drive ~flush one ~max_index
