open Patterns_sim

type report = {
  cert : Cert.t;
  original_directives : int;
  original_n : int;
  replays : int;
}

(* Every candidate is validated the only way that counts: replayed
   end-to-end and re-checked for the *same* property.  [violates]
   returns the fresh violation message so the shrunk certificate's
   report describes the shrunk run, not the original.  With a database
   attached, candidates whose execution is already recorded are
   answered from the index (ddmin retries the same complement at
   several granularities, so the memoization is genuine); misses
   replay live and are recorded for the next pass. *)
let violates ?db replays cert =
  incr replays;
  match Replay.replay ?db cert with Replay.Reproduced msg -> Some msg | _ -> None

(* Dropping a [Fail_now p] orphans any failure notice about [p]:
   without the crash there is no notice to deliver, so the candidate
   script would be rejected as inapplicable rather than tested on its
   merits.  Closing the deletion keeps candidates meaningful. *)
let close script =
  let failed = List.filter_map (function Script.Fail_now p -> Some p | _ -> None) script in
  List.filter
    (function Script.Deliver_note (_, about) -> List.mem about failed | _ -> true)
    script

let split_chunks xs k =
  let arr = Array.of_list xs in
  let len = Array.length arr in
  List.init k (fun i ->
      let lo = i * len / k and hi = (i + 1) * len / k in
      Array.to_list (Array.sub arr lo (hi - lo)))

(* Zeller-Hildebrandt ddmin over the directive list: try removing
   chunks at increasing granularity, restarting whenever a smaller
   violating script is found.  [test] returns the new violation
   message when the candidate still violates. *)
let ddmin test xs =
  let best_msg = ref None in
  let rec go xs k =
    let len = List.length xs in
    if len <= 1 then xs
    else
      let chunks = split_chunks xs k in
      let rec complements i =
        if i >= k then None
        else
          let candidate = close (List.concat (List.filteri (fun j _ -> j <> i) chunks)) in
          if List.length candidate >= len then complements (i + 1)
          else
            match test candidate with
            | Some msg ->
              best_msg := Some msg;
              Some candidate
            | None -> complements (i + 1)
      in
      match complements 0 with
      | Some smaller -> go smaller (max (k - 1) 2)
      | None -> if k < len then go xs (min len (2 * k)) else xs
  in
  let xs' = go xs (min 2 (max 1 (List.length xs))) in
  (xs', !best_msg)

(* Chronological truncation: a violation observed by step [t] does not
   need the schedule after [t].  ddmin can find this too, but peeling
   the suffix first is near-free and leaves ddmin a much smaller
   list. *)
let truncate_suffix test xs =
  let best_msg = ref None in
  let rec go xs =
    match List.rev xs with
    | [] -> xs
    | _ :: shorter_rev -> (
      let candidate = close (List.rev shorter_rev) in
      match test candidate with
      | Some msg ->
        best_msg := Some msg;
        go candidate
      | None -> xs)
  in
  let xs' = go xs in
  (xs', !best_msg)

(* Omission elimination: try converting each drop back into the
   delivery it suppressed.  A conversion that still violates means the
   omission was not load-bearing; what survives is a minimal set of
   drops, which is the quantity an omission-fault witness is about.
   Runs before the deletion passes — a converted drop becomes an
   ordinary delivery that truncation and ddmin can then remove
   outright, whereas deleting the drop directive directly would leave
   the message buffered and often perturb every later index. *)
let eliminate_drops test script =
  let best_msg = ref None in
  let arr = Array.of_list script in
  Array.iteri
    (fun i d ->
      match (d : Script.directive) with
      | Script.Drop_msg { at; from; index } ->
        let saved = arr.(i) in
        arr.(i) <- Script.Deliver_msg { at; from; index };
        (match test (Array.to_list arr) with
        | Some msg -> best_msg := Some msg
        | None -> arr.(i) <- saved)
      | _ -> ())
    arr;
  (Array.to_list arr, !best_msg)

let max_proc_referenced script =
  List.fold_left
    (fun acc d ->
      let ps =
        match (d : Script.directive) with
        | Script.Step_of p | Script.Fail_now p | Script.Drain p -> [ p ]
        | Script.Deliver_from (a, b) | Script.Deliver_note (a, b) -> [ a; b ]
        | Script.Deliver_msg { at; from; _ } | Script.Drop_msg { at; from; _ } ->
          [ at; from ]
        | Script.Flush_fifo -> []
      in
      List.fold_left max acc ps)
    (-1) script

let take k xs = List.filteri (fun i _ -> i < k) xs

let shrink ?db (cert : Cert.t) =
  match Patterns_protocols.Registry.find cert.Cert.protocol with
  | None -> Error (Printf.sprintf "unknown protocol %S" cert.Cert.protocol)
  | Some entry ->
    let replays = ref 0 in
    let violates replays cert = violates ?db replays cert in
    let test current script =
      violates replays { current with Cert.script; message = current.Cert.message }
    in
    (match violates replays cert with
    | None -> Error "certificate does not reproduce; nothing to shrink"
    | Some msg0 ->
      let cur = ref { cert with Cert.message = msg0 } in
      let update script = function
        | Some msg -> cur := { !cur with Cert.script; message = msg }
        | None -> ()
      in
      (* 0. convert non-load-bearing drops back into deliveries *)
      let script, msg = eliminate_drops (test !cur) !cur.Cert.script in
      update script msg;
      (* 1. peel the suffix, then ddmin what remains *)
      let script, msg = truncate_suffix (test !cur) !cur.Cert.script in
      update script msg;
      let script, msg = ddmin (test !cur) !cur.Cert.script in
      update script msg;
      (* 2. shrink the instance: drop the top processor while no
         directive mentions it and the smaller instance still
         violates *)
      if not entry.Patterns_protocols.Registry.fixed_n then begin
        let continue = ref true in
        while !continue do
          let n' = !cur.Cert.n - 1 in
          if n' < 1 || max_proc_referenced !cur.Cert.script >= n' then continue := false
          else
            let candidate =
              { !cur with Cert.n = n'; inputs = take n' !cur.Cert.inputs }
            in
            match violates replays candidate with
            | Some msg -> cur := { candidate with Cert.message = msg }
            | None -> continue := false
        done
      end;
      (* 3. canonicalize the inputs: flip each 1-bit to 0 when the
         violation survives *)
      List.iteri
        (fun i b ->
          if b then begin
            let inputs =
              List.mapi (fun j b -> if j = i then false else b) !cur.Cert.inputs
            in
            let candidate = { !cur with Cert.inputs } in
            match violates replays candidate with
            | Some msg -> cur := { candidate with Cert.message = msg }
            | None -> ()
          end)
        !cur.Cert.inputs;
      (* 4. one more ddmin pass: the smaller instance may have made
         more of the schedule redundant *)
      let script, msg = ddmin (test !cur) !cur.Cert.script in
      update script msg;
      Ok
        {
          cert = !cur;
          original_directives = List.length cert.Cert.script;
          original_n = cert.Cert.n;
          replays = !replays;
        })

let pp_report ppf r =
  Format.fprintf ppf "shrunk: %d -> %d directive(s), n %d -> %d, inputs %s (%d replays)"
    r.original_directives
    (List.length r.cert.Cert.script)
    r.original_n r.cert.Cert.n
    (String.concat "" (List.map (fun b -> if b then "1" else "0") r.cert.Cert.inputs))
    r.replays
