(** Violation hunting with certificate output.

    Two bounded adversaries over the same kernel goal search
    ({!Patterns_search.Search.find_first}), both deterministic
    functions of their parameters for every [jobs] value:

    - {!Random}: the sampling adversary of
      {!Patterns_core.Audit.hunt}, draw-for-draw identical (same
      per-run generator seeding, same violation report), extended to
      read the winning schedule back into a replayable {!Cert};
    - {!Systematic}: an exhaustive sweep of the canonical {!Plan}
      space — fault count ascending, so the first hit is a
      smallest-fault-count witness; within a fault count, schedule
      flavour then fault plan then inputs.

    [space] (default {!Plan.Crash_only}) widens the adversary along
    the fault-model lattice: {!Plan.Omission} adds receive-drop and
    send-omission faults of one static victim per plan,
    {!Plan.Mobile} lets every fault pick its kind and victim
    independently.  The crash-only behaviour of both modes is
    bit-identical to what it always was — same draws, same plan
    indices, same certificates, same metrics values.

    Either way [Ok cert] carries the violation report in
    [cert.message] and a schedule script that {!Replay} reproduces;
    [Error tried] is a truncated search — run budget or plan space or
    wall-clock [deadline] exhausted after [tried] runs — and proves
    nothing. *)

type mode = Random | Systematic

val mode_string : mode -> string

val hunt :
  ?metrics:Patterns_search.Metrics.t ref ->
  ?max_failures:int ->
  ?max_runs:int ->
  ?fifo_notices:bool ->
  ?jobs:int ->
  ?deadline:float ->
  ?checkpoint:Patterns_search.Checkpoint.spec ->
  ?horizon:int ->
  ?mode:mode ->
  ?memo:bool ->
  ?space:Plan.space ->
  property:Patterns_core.Audit.property ->
  rule:Patterns_protocols.Decision_rule.t ->
  n:int ->
  seed:int ->
  Patterns_protocols.Registry.entry ->
  (Cert.t, int) result
(** [horizon] (default 60, matching the random adversary's crash-step
    range) bounds the systematic mode's fault steps; [seed] only
    affects {!Random} mode.  [max_failures] is the total fault budget
    — crashes and omissions together.  In {!Random} mode the omission
    draws come after the historical crash draws, so the crash-only
    stream is untouched draw for draw; in {!Systematic} mode an index
    past the exactly representable plan space raises [Failure] with
    {!Plan.Budget_exceeded}'s message instead of silently decoding a
    wrong plan.  The systematic index space is capped at
    [max_runs] — the canonical order makes a truncated sweep a
    well-defined prefix.  The metrics sink accumulates the kernel's
    counters; as for every [find_first] search, the expanded count may
    overshoot the winning index by up to one batch and is the only
    jobs-dependent field.

    [checkpoint] cuts the run-index space into fixed chunks (4096),
    records every fully swept chunk — its upper bound plus the
    cumulative kernel metrics — and resumes a killed hunt from the
    recorded prefix, which is valid because both modes are per-index
    deterministic (the random mode seeds a fresh generator from each
    run index).  The chunked sweep tries the same indices in the same
    order as the one-shot search and returns the same winner and tried
    count; the metrics differ only in shape (one root per chunk).
    Deadline-interrupted chunks are never recorded.  Raises [Failure]
    when resuming against a file whose header (protocol, property,
    rule, n, seed, mode, budgets) differs.

    [memo] (default true, systematic mode only) shares failure-free
    prefixes across plans: the [3 * 2^n] failure-free runs of the plan
    space are computed once with per-step snapshots
    ({!Patterns_sim.Engine.Make.run_prefix}) and every plan resumes
    from its earliest crash step instead of replaying from the initial
    configuration.  Results are bit-identical to [~memo:false] —
    certificates included — because the systematic schedulers are pure
    functions of [(step, config, actions)]; the metrics additionally
    carry [prefix_hits] and [prefix_states_saved] (the /8 section),
    jobs-invariant on full sweeps and overshooting with [jobs] on
    goal-found hunts exactly like the expanded count.  Random mode
    ignores [memo] and keeps its PRNG stream draw-for-draw. *)
