(** Systematic fault plans over a layered fault model.

    A fault plan is one bounded-adversary strategy: an input vector, a
    bounded budget of [(step, victim, kind)] fault triples
    ({!Patterns_sim.Fault.t}), and a deterministic schedule flavour.
    The plans over a given horizon form a finite space with a
    canonical total order, so a systematic hunt can sweep it exactly —
    by fault count first (failure-free runs before single faults
    before double faults, so the first hit is a minimum-fault
    witness), then schedule flavour, then fault-plan rank, with input
    vectors varying fastest — and every run index names the same plan
    on every machine and for every [--jobs] value.

    Three nested spaces, matching the fault-model lattice:

    - {!Crash_only} — the paper's fail-stop adversary.  Index-for-index
      identical to the historical crash-plan enumeration.
    - {!Omission} — crashes plus message-omission faults (receive
      drops and send omissions) of one {e static} omission-faulty
      processor per plan.
    - {!Mobile} — every fault independently picks its kind and victim,
      so the omission-faulty processor may change between faults
      (Godard & Peters' mobile omission adversary, bounded). *)

open Patterns_sim

type flavour =
  | Fifo  (** the engine's deterministic FIFO scheduler *)
  | Lifo  (** newest applicable action first *)
  | Round_robin
      (** applicable action at position [step mod length] — a rotating
          pick that interleaves processors differently from both *)

val flavours : flavour list
(** In enumeration order: [Fifo; Lifo; Round_robin]. *)

val flavour_string : flavour -> string

type space = Crash_only | Omission | Mobile

val spaces : space list
(** In lattice order: [Crash_only; Omission; Mobile]. *)

val space_string : space -> string
(** ["crash"], ["omission"], ["mobile"] — the CLI's [--faults]
    vocabulary. *)

val space_of_string : string -> space option

type t = {
  inputs : bool list;  (** length [n] *)
  faults : Fault.t list;
      (** fault plan, in digit order; steps in [0, horizon) *)
  flavour : flavour;
}

val crashes : t -> (int * Proc_id.t) list
(** The crash faults as the engine's [(step, victim)] failure plan. *)

val omissions : t -> Fault.t list
(** The drop and send-omit faults, in plan order. *)

val fault_count : t -> int

val is_mobile : t -> bool
(** At least two omission faults with distinct victims — a plan only
    the {!Mobile} space enumerates. *)

val pp : Format.formatter -> t -> unit

type error =
  | Out_of_range
      (** the index (or plan) is not in the enumerated space *)
  | Budget_exceeded
      (** the space is too large for exact indexing: some
          exactly-[k]-fault block size exceeds [max_int], so decoding
          would silently saturate — shrink the horizon or the fault
          budget *)

val error_string : error -> string

val count : ?space:space -> horizon:int -> n:int -> max_faults:int -> unit -> int
(** Size of the plan space, saturating at [max_int] (a saturated count
    still compares correctly against any finite run budget; only
    {!decode}/{!rank} need exactness and they report
    {!Budget_exceeded} themselves).  Per exactly-[k] block:
    [3 * 2^n * S_k] where [S_k] is [cn^k] for {!Crash_only}
    ([cn = horizon * n]), [(3 cn)^k] for {!Mobile}, and
    [cn^k + n ((cn + 2 horizon)^k - cn^k)] for {!Omission}. *)

val decode :
  ?space:space -> horizon:int -> n:int -> max_faults:int -> int -> (t, error) result
(** [decode ~space ~horizon ~n ~max_faults i] is the [i]-th plan
    (0-based) in canonical order: fault count ascending; within a
    fault count, flavour-major ({!flavours} order), then lexicographic
    fault-sequence rank, with the input vector (bit [i] = processor
    [i]'s initial bit) varying fastest.  For {!Crash_only} this is the
    historical crash enumeration digit for digit.  [Error
    Budget_exceeded] replaces the old silent saturation: indices past
    the exactly-representable boundary are refused rather than decoded
    wrongly. *)

val rank :
  ?space:space -> horizon:int -> n:int -> max_faults:int -> t -> (int, error) result
(** Inverse of {!decode}: the canonical index of a plan, or
    [Out_of_range] when the plan does not belong to the space (too
    many faults, fields outside [horizon]/[n], a fault kind the space
    does not enumerate, or distinct omission victims under
    {!Omission}).  [rank (decode i) = Ok i] and [decode (rank p) = Ok
    p] on the exactly representable space — pinned by the qcheck
    bijection suite. *)
