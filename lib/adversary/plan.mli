(** Systematic fault plans.

    A fault plan is one bounded-adversary strategy: an input vector, a
    crash plan (which processors fail, and at which global step), and
    a deterministic schedule flavour.  The plans over a given horizon
    form a finite space with a canonical total order, so a systematic
    hunt can sweep it exactly — by crash count first (failure-free
    runs before single crashes before double crashes), then schedule
    flavour, then crash-plan rank, with input vectors varying fastest
    — and every run index names the same plan on every machine and
    for every [--jobs] value. *)

open Patterns_sim

type flavour =
  | Fifo  (** the engine's deterministic FIFO scheduler *)
  | Lifo  (** newest applicable action first *)
  | Round_robin
      (** applicable action at position [step mod length] — a rotating
          pick that interleaves processors differently from both *)

val flavours : flavour list
(** In enumeration order: [Fifo; Lifo; Round_robin]. *)

val flavour_string : flavour -> string

type t = {
  inputs : bool list;  (** length [n] *)
  failures : (int * Proc_id.t) list;
      (** crash plan: [(step, victim)], step in [0, horizon) *)
  flavour : flavour;
}

val pp : Format.formatter -> t -> unit

val count : horizon:int -> n:int -> max_failures:int -> int
(** Size of the plan space: [sum over k = 0..max_failures of
    3 * (horizon * n)^k * 2^n].  Saturates at [max_int] instead of
    overflowing, so callers can always [min] it against a run
    budget. *)

val decode : horizon:int -> n:int -> max_failures:int -> int -> t
(** [decode ~horizon ~n ~max_failures i] is the [i]-th plan
    (0-based) in canonical order: crash count ascending; within a
    crash count, flavour-major ({!flavours} order), then
    lexicographic crash-plan rank (each crash is a digit in base
    [horizon * n], encoded [step * n + victim]), with the input
    vector (bit [i] = processor [i]'s initial bit) varying fastest.
    Raises [Invalid_argument] when [i] is outside
    [0, count ~horizon ~n ~max_failures). *)
