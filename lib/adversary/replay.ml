open Patterns_sim

type verdict =
  | Reproduced of string
  | Not_reproduced
  | Inapplicable of string

let exit_code = function Reproduced _ -> 0 | Not_reproduced -> 1 | Inapplicable _ -> 2

let pp ppf = function
  | Reproduced msg -> Format.fprintf ppf "@[<v>reproduced:@,%s@]" msg
  | Not_reproduced -> Format.pp_print_string ppf "not reproduced: the property holds on this replay"
  | Inapplicable msg -> Format.fprintf ppf "inapplicable: %s" msg

(* The property checkers are trace-polymorphic, so one function serves
   every protocol once the engine has played the script. *)
let check (type msg) property ~rule ~inputs ~n ~quiescent ~statuses
    (trace : msg Trace.t) =
  let open Patterns_core in
  match (property : Audit.property) with
  | Audit.TC -> Check.total_consistency trace
  | Audit.IC -> Check.interactive_consistency trace
  | Audit.Agreement -> Check.nonfaulty_agreement trace
  | Audit.Rule -> Check.decision_rule rule ~inputs trace
  | Audit.WT ->
    let failed = Array.make n false in
    List.iter (fun p -> failed.(p) <- true) (Trace.failures trace);
    Check.weak_termination ~quiescent ~statuses
      ~ever_decided:(Check.ever_decided ~n trace) ~failed

let replay (cert : Cert.t) =
  match Patterns_protocols.Registry.find cert.Cert.protocol with
  | None -> Inapplicable (Printf.sprintf "unknown protocol %S" cert.Cert.protocol)
  | Some entry ->
    let (module P : Protocol.S) = entry.Patterns_protocols.Registry.protocol in
    if not (P.valid_n cert.Cert.n) then
      Inapplicable (Printf.sprintf "%s does not support n = %d" P.name cert.Cert.n)
    else begin
      let module E = Engine.Make (P) in
      (* untracked: a replay is one linear execution; the incremental
         fingerprint machinery would only slow it down *)
      match
        try E.play (E.init_untracked ~n:cert.Cert.n ~inputs:cert.Cert.inputs) cert.Cert.script
        with e -> Error (Printexc.to_string e)
      with
      | Error msg -> Inapplicable ("script does not apply: " ^ msg)
      | Ok (final, trace) -> (
        match
          check cert.Cert.property ~rule:cert.Cert.rule ~inputs:cert.Cert.inputs
            ~n:cert.Cert.n ~quiescent:(E.quiescent final) ~statuses:(E.statuses final)
            trace
        with
        | Error msg -> Reproduced msg
        | Ok () -> Not_reproduced)
    end
