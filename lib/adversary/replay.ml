open Patterns_sim
module Fingerprint = Patterns_stdx.Fingerprint
module Json = Patterns_stdx.Json
module Db = Patterns_db.Db
module Metrics = Patterns_search.Metrics

type verdict =
  | Reproduced of string
  | Not_reproduced
  | Inapplicable of string

let exit_code = function Reproduced _ -> 0 | Not_reproduced -> 1 | Inapplicable _ -> 2

let pp ppf = function
  | Reproduced msg -> Format.fprintf ppf "@[<v>reproduced:@,%s@]" msg
  | Not_reproduced -> Format.pp_print_string ppf "not reproduced: the property holds on this replay"
  | Inapplicable msg -> Format.fprintf ppf "inapplicable: %s" msg

(* The property checkers are trace-polymorphic, so one function serves
   every protocol once the engine has played the script. *)
let check (type msg) property ~rule ~inputs ~n ~quiescent ~statuses
    (trace : msg Trace.t) =
  let open Patterns_core in
  match (property : Audit.property) with
  | Audit.TC -> Check.total_consistency trace
  | Audit.IC -> Check.interactive_consistency trace
  | Audit.Agreement -> Check.nonfaulty_agreement trace
  | Audit.Rule -> Check.decision_rule rule ~inputs trace
  | Audit.WT ->
    let failed = Array.make n false in
    List.iter (fun p -> failed.(p) <- true) (Trace.failures trace);
    Check.weak_termination ~quiescent ~statuses
      ~ever_decided:(Check.ever_decided ~n trace) ~failed

(* ----- the execution-database side ----- *)

(* The event descriptor of a directive is its stable rendering —
   "deliver to p0 message p1#0" — so recorded runs and certificate
   scripts meet in one vocabulary. *)
let descriptor d = Format.asprintf "%a" Script.pp d

(* Path fingerprint: the root fingerprint folded with each
   (descriptor, destination-fingerprint) pair in script order.  A
   verdict fact keyed on it is bound to the exact recorded transitions
   of this execution, not merely to the script text. *)
let path_feed fp desc dst_fp =
  let fp = String.fold_left (fun acc c -> Fingerprint.feed acc (Char.code c)) fp desc in
  Fingerprint.feed fp dst_fp

let inputs_string inputs = String.concat "" (List.map (fun b -> if b then "1" else "0") inputs)

let verdict_key (cert : Cert.t) path_fp =
  Printf.sprintf "%s|%d|%s|%s|%s|%d" cert.Cert.protocol cert.Cert.n
    (inputs_string cert.Cert.inputs)
    (Cert.property_string cert.Cert.property)
    (Cert.rule_string cert.Cert.rule)
    (Fingerprint.to_int path_fp)

(* Inapplicable verdicts are never stored: they describe this replayer
   (unknown protocol, changed code), not the recorded execution. *)
let verdict_fact = function
  | Reproduced msg ->
    Json.Obj [ ("verdict", Json.String "reproduced"); ("message", Json.String msg) ]
  | Not_reproduced -> Json.Obj [ ("verdict", Json.String "not_reproduced") ]
  | Inapplicable _ -> invalid_arg "verdict_fact: Inapplicable is not storable"

let verdict_of_fact j =
  match Json.member "verdict" j with
  | Some (Json.String "reproduced") -> (
    match Json.member "message" j with
    | Some (Json.String msg) -> Some (Reproduced msg)
    | _ -> None)
  | Some (Json.String "not_reproduced") -> Some Not_reproduced
  | _ -> None

let replay_metrics ?db (cert : Cert.t) =
  let live_applied = ref 0 in
  let stats0 = Option.map (fun db -> Db.stats db) db in
  let verdict =
    match Patterns_protocols.Registry.find cert.Cert.protocol with
    | None -> Inapplicable (Printf.sprintf "unknown protocol %S" cert.Cert.protocol)
    | Some entry ->
      let (module P : Protocol.S) = entry.Patterns_protocols.Registry.protocol in
      if not (P.valid_n cert.Cert.n) then
        Inapplicable (Printf.sprintf "%s does not support n = %d" P.name cert.Cert.n)
      else begin
        let module E = Engine.Make (P) in
        (* untracked: a replay is one linear execution; the incremental
           fingerprint machinery would only slow it down *)
        let root () = E.init_untracked ~n:cert.Cert.n ~inputs:cert.Cert.inputs in
        let fp_of c = Fingerprint.to_int (E.fingerprint c) in
        let live () =
          match
            try E.play (root ()) cert.Cert.script with e -> Error (Printexc.to_string e)
          with
          | Error msg -> Inapplicable ("script does not apply: " ^ msg)
          | Ok (final, trace) ->
            live_applied := List.length cert.Cert.script;
            (match
               check cert.Cert.property ~rule:cert.Cert.rule ~inputs:cert.Cert.inputs
                 ~n:cert.Cert.n ~quiescent:(E.quiescent final) ~statuses:(E.statuses final)
                 trace
             with
            | Error msg -> Reproduced msg
            | Ok () -> Not_reproduced)
        in
        match db with
        | None -> live ()
        | Some db ->
          (* Record the execution stepwise: one [play] per directive
             evolves the config identically to the one-shot play (the
             engine is config-deterministic per directive), yielding
             the intermediate fingerprints the edge log needs. *)
          let record () =
            let rec go c path_fp = function
              | [] -> Some path_fp
              | d :: rest -> (
                match
                  try E.play c [ d ] with e -> Error (Printexc.to_string e)
                with
                | Error _ -> None
                | Ok (c', _) ->
                  let desc = descriptor d in
                  let dst = fp_of c' in
                  Db.add_edge db ~src:(fp_of c) ~event:desc ~dst;
                  go c' (path_feed path_fp desc dst) rest)
            in
            let r = root () in
            go r (E.fingerprint r) cert.Cert.script
          in
          (* Walk the recorded edges instead of the engine: src and
             event bound, so each step is one point query (a cached
             prefix scan), and the engine never runs. *)
          let walk () =
            let r = root () in
            let root_fp = fp_of r in
            if not (Db.mem_config db root_fp) then None
            else
              let rec go fp path_fp = function
                | [] -> Some path_fp
                | d :: rest -> (
                  let desc = descriptor d in
                  match Db.edges db ~src:fp ~event:desc () with
                  | [ (_, _, dst) ] -> go dst (path_feed path_fp desc dst) rest
                  | _ -> None)
              in
              go root_fp (E.fingerprint r) cert.Cert.script
          in
          let live_and_store () =
            let v = live () in
            (match v with
            | Reproduced _ | Not_reproduced -> (
              match record () with
              | Some path_fp ->
                Db.put_fact db ~kind:"verdict" ~key:(verdict_key cert path_fp)
                  (verdict_fact v)
              | None -> ())
            | Inapplicable _ -> ());
            v
          in
          (match walk () with
          | Some path_fp -> (
            match
              Option.bind
                (Db.get_fact db ~kind:"verdict" ~key:(verdict_key cert path_fp))
                verdict_of_fact
            with
            | Some v -> v (* zero engine plays, zero kernel expansions *)
            | None -> live_and_store ())
          | None -> live_and_store ())
      end
  in
  let m =
    {
      Metrics.zero with
      Metrics.states_expanded = !live_applied;
      budget_consumed = !live_applied;
      roots = 1;
    }
  in
  let m =
    match (db, stats0) with
    | Some db, Some s0 ->
      let s1 = Db.stats db in
      Metrics.with_db ~edges:s1.Db.edges
        ~index_scans:(s1.Db.index_scans - s0.Db.index_scans)
        ~cache_hits:(s1.Db.cache_hits - s0.Db.cache_hits)
        ~cache_misses:(s1.Db.cache_misses - s0.Db.cache_misses)
        m
    | _ -> m
  in
  (verdict, m)

let replay ?db cert = fst (replay_metrics ?db cert)
