open Patterns_sim
open Patterns_stdx

type t = {
  protocol : string;
  n : int;
  inputs : bool list;
  property : Patterns_core.Audit.property;
  rule : Patterns_protocols.Decision_rule.t;
  script : Script.directive list;
  message : string;
}

(* Schema /2 extends /1 with omission directives in the script and an
   informational "drops" list.  The writer stays on /1 for pure
   fail-stop certificates — byte-identical to every certificate this
   tool has ever emitted — and bumps to /2 exactly when the script
   carries a drop; the reader accepts both. *)
let schema_v1 = "patterns-violation-cert/1"
let schema_v2 = "patterns-violation-cert/2"

let property_string =
  let open Patterns_core.Audit in
  function TC -> "tc" | IC -> "ic" | Agreement -> "agreement" | WT -> "wt" | Rule -> "rule"

let property_of_string =
  let open Patterns_core.Audit in
  function
  | "tc" -> Ok TC
  | "ic" -> Ok IC
  | "agreement" -> Ok Agreement
  | "wt" -> Ok WT
  | "rule" -> Ok Rule
  | s -> Error (Printf.sprintf "unknown property %S" s)

let rule_string =
  let open Patterns_protocols.Decision_rule in
  function
  | Unanimity -> "unanimity"
  | Broadcast p -> "broadcast:" ^ string_of_int p
  | Threshold k -> "threshold:" ^ string_of_int k
  | Subset ps -> "subset:" ^ String.concat "," (List.map string_of_int ps)
  | Any_input -> "any-input"

let rule_of_string s =
  let open Patterns_protocols.Decision_rule in
  let int_of what v =
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "rule %s: %S is not an integer" what v)
  in
  match String.split_on_char ':' s with
  | [ "unanimity" ] -> Ok Unanimity
  | [ "any-input" ] -> Ok Any_input
  | [ "broadcast"; p ] -> Result.map (fun p -> Broadcast p) (int_of "broadcast" p)
  | [ "threshold"; k ] -> Result.map (fun k -> Threshold k) (int_of "threshold" k)
  | [ "subset"; ps ] ->
    List.fold_right
      (fun p acc ->
        Result.bind acc (fun ps -> Result.map (fun p -> p :: ps) (int_of "subset" p)))
      (String.split_on_char ',' ps)
      (Ok [])
    |> Result.map (fun ps -> Subset ps)
  | _ -> Error (Printf.sprintf "unknown rule %S" s)

let crashes c =
  List.filter_map (function Script.Fail_now p -> Some p | _ -> None) c.script

let drops c =
  List.filter_map
    (function Script.Drop_msg { at; from; index } -> Some (at, from, index) | _ -> None)
    c.script

let bits inputs = String.concat "" (List.map (fun b -> if b then "1" else "0") inputs)

let bits_of_string n s =
  if String.length s <> n then
    Error (Printf.sprintf "inputs %S: expected %d bits" s n)
  else if not (String.for_all (fun ch -> ch = '0' || ch = '1') s) then
    Error (Printf.sprintf "inputs %S: not a bit string" s)
  else Ok (List.init n (fun i -> s.[i] = '1'))

let to_json c =
  let ds = drops c in
  let drops_field =
    match ds with
    | [] -> []
    | _ ->
      (* derived from the script's Drop_msg directives; informational *)
      [
        ( "drops",
          Json.List
            (List.map
               (fun (at, from, index) ->
                 Json.Obj
                   [ ("at", Json.Int at); ("from", Json.Int from); ("index", Json.Int index) ])
               ds) );
      ]
  in
  Json.Obj
    ([
       ("schema", Json.String (if ds = [] then schema_v1 else schema_v2));
       ("protocol", Json.String c.protocol);
       ("n", Json.Int c.n);
       ("inputs", Json.String (bits c.inputs));
       ("property", Json.String (property_string c.property));
       ("rule", Json.String (rule_string c.rule));
       (* derived from the script's Fail_now directives; informational *)
       ("crashes", Json.List (List.map (fun p -> Json.Int p) (crashes c)));
     ]
    @ drops_field
    @ [
        ("script", Json.List (List.map Script.to_json c.script));
        ("message", Json.String c.message);
      ])

let ( let* ) = Result.bind

let of_json j =
  let str k = Result.bind (Json.field k j) Json.to_str in
  let* s = str "schema" in
  if s <> schema_v1 && s <> schema_v2 then
    Error (Printf.sprintf "unsupported schema %S (want %S or %S)" s schema_v1 schema_v2)
  else
    let* protocol = str "protocol" in
    let* n = Result.bind (Json.field "n" j) Json.to_int in
    let* inputs = Result.bind (str "inputs") (bits_of_string n) in
    let* property = Result.bind (str "property") property_of_string in
    let* rule = Result.bind (str "rule") rule_of_string in
    let* script_js = Result.bind (Json.field "script" j) Json.to_list in
    let* script =
      List.fold_right
        (fun d acc -> Result.bind acc (fun ds -> Result.map (fun d -> d :: ds) (Script.of_json d)))
        script_js (Ok [])
    in
    let* message = str "message" in
    Ok { protocol; n; inputs; property; rule; script; message }

let pp ppf c =
  match drops c with
  | [] ->
    Format.fprintf ppf "@[<v>%s: %s violation, n=%d, inputs %s, %d crash(es), %d directive(s)@]"
      c.protocol (property_string c.property) c.n (bits c.inputs)
      (List.length (crashes c)) (List.length c.script)
  | ds ->
    Format.fprintf ppf
      "@[<v>%s: %s violation, n=%d, inputs %s, %d crash(es), %d drop(s), %d directive(s)@]"
      c.protocol (property_string c.property) c.n (bits c.inputs)
      (List.length (crashes c)) (List.length ds) (List.length c.script)
