open Patterns_sim

type flavour = Fifo | Lifo | Round_robin

let flavours = [ Fifo; Lifo; Round_robin ]

let flavour_string = function
  | Fifo -> "fifo"
  | Lifo -> "lifo"
  | Round_robin -> "round-robin"

type space = Crash_only | Omission | Mobile

let spaces = [ Crash_only; Omission; Mobile ]

let space_string = function
  | Crash_only -> "crash"
  | Omission -> "omission"
  | Mobile -> "mobile"

let space_of_string = function
  | "crash" -> Some Crash_only
  | "omission" -> Some Omission
  | "mobile" -> Some Mobile
  | _ -> None

type t = {
  inputs : bool list;
  faults : Fault.t list;
  flavour : flavour;
}

type error = Out_of_range | Budget_exceeded

let error_string = function
  | Out_of_range -> "out of range"
  | Budget_exceeded -> "plan space exceeds the exactly representable budget"

let crashes p =
  List.filter_map
    (fun (f : Fault.t) ->
      match f.Fault.kind with
      | Fault.Crash -> Some (f.Fault.step, f.Fault.victim)
      | Fault.Drop | Fault.Send_omit -> None)
    p.faults

let omissions p = List.filter Fault.is_omission p.faults

let fault_count p = List.length p.faults

let is_mobile p =
  match omissions p with
  | [] | [ _ ] -> false
  | f :: rest -> List.exists (fun (g : Fault.t) -> not (Proc_id.equal g.Fault.victim f.Fault.victim)) rest

let pp ppf p =
  Format.fprintf ppf "@[inputs %s, faults [%s], schedule %s@]"
    (String.concat "" (List.map (fun b -> if b then "1" else "0") p.inputs))
    (String.concat ", " (List.map (fun f -> Format.asprintf "%a" Fault.pp f) p.faults))
    (flavour_string p.flavour)

(* ----- arithmetic -----

   Two flavours on purpose.  [count] saturates at [max_int]: a
   saturated count still compares correctly against any finite run
   budget, which is all callers do with it.  [decode]/[rank] use exact
   checked arithmetic and surface [Budget_exceeded] the moment a block
   size stops being exactly representable — the silent-saturation
   alternative decodes a plausible-looking but wrong plan for every
   index past the boundary. *)

let add_cap a b = if a > max_int - b then max_int else a + b

let ( let* ) = Option.bind

let mul_exact a b =
  if a = 0 || b = 0 then Some 0 else if a > max_int / b then None else Some (a * b)

let add_exact a b = if a > max_int - b then None else Some (a + b)

let rec pow_exact b k = if k = 0 then Some 1 else Option.bind (pow_exact b (k - 1)) (mul_exact b)

(* unchecked power, used only for quantities already bounded by an
   exactly representable block size *)
let rec pow b k = if k = 0 then 1 else b * pow b (k - 1)

let n_flavours = List.length flavours

(* ----- digit vocabularies -----

   Every space enumerates exactly-[k]-fault blocks as length-[k]
   digit strings, most significant first.

   Crash_only: digit base [cn = horizon * n], digit
   [step * n + victim] — unchanged from the crash-plan enumeration,
   so crash sweeps are index-for-index what they always were.

   Mobile: digit base [3 * cn], digit
   [kind * cn + step * n + victim] with kinds in {!Fault.kind_rank}
   order — any fault kind at any victim at any position, the
   omission-faulty processor free to move between faults.

   Omission: the static-victim middle rung.  One shared omission
   victim [v] per plan; crash digits range over [cn] as above, and an
   omission digit [cn + kind2 * horizon + step] (kind2 0 = drop,
   1 = send-omit) names a fault of [v].  The exactly-[k] block counts
   [cn^k] pure-crash strings once, plus for each of the [n] choices of
   [v] the [(cn + 2h)^k - cn^k] strings with at least one omission
   digit. *)

let seqs_exact ~space ~horizon ~n k =
  let cn = horizon * n in
  match space with
  | Crash_only -> pow_exact cn k
  | Mobile -> Option.bind (mul_exact 3 cn) (fun b -> pow_exact b k)
  | Omission ->
    let b = cn + (2 * horizon) in
    let* bk = pow_exact b k in
    let* ck = pow_exact cn k in
    let* mixed = mul_exact n (bk - ck) in
    add_exact ck mixed

let block_exact ~space ~horizon ~n k =
  let* sk = seqs_exact ~space ~horizon ~n k in
  let* per_flavour = mul_exact sk (1 lsl n) in
  mul_exact n_flavours per_flavour

let count ?(space = Crash_only) ~horizon ~n ~max_faults () =
  let rec go k acc =
    if k > max_faults then acc
    else
      let block =
        match block_exact ~space ~horizon ~n k with Some b -> b | None -> max_int
      in
      go (k + 1) (add_cap acc block)
  in
  go 0 0

(* ----- decode ----- *)

let crash_of_digit ~n d : Fault.t =
  { Fault.step = d / n; victim = d mod n; kind = Fault.Crash }

let mobile_of_digit ~horizon ~n d : Fault.t =
  let cn = horizon * n in
  let kind = match d / cn with 0 -> Fault.Crash | 1 -> Fault.Drop | _ -> Fault.Send_omit in
  let e = d mod cn in
  { Fault.step = e / n; victim = e mod n; kind }

let omission_of_digit ~horizon ~n ~victim d : Fault.t =
  let cn = horizon * n in
  if d < cn then crash_of_digit ~n d
  else
    let e = d - cn in
    let kind = if e / horizon = 0 then Fault.Drop else Fault.Send_omit in
    { Fault.step = e mod horizon; victim; kind }

(* plain positional decoding: [rank] as [k] digits of base [base],
   most significant first *)
let digits ~base k rank =
  let rec go j rank acc = if j = 0 then acc else go (j - 1) (rank / base) ((rank mod base) :: acc) in
  go k rank []

(* the [s]-th (lexicographic) length-[k] base-[b] string containing at
   least one digit >= [cn], by digit-by-digit unranking: before the
   first omission digit a crash digit [d] has [b^rem - cn^rem]
   completions (the remainder must still place an omission), an
   omission digit the full [b^rem]; after it, every digit has
   [b^rem].  All powers are bounded by the block size, which the
   caller proved exact. *)
let unrank_mixed ~cn ~b k s =
  let rec go j s have_om acc =
    if j = k then List.rev acc
    else
      let rem = k - j - 1 in
      let brem = pow b rem in
      let crem = pow cn rem in
      let d, s, have_om =
        if have_om then (s / brem, s mod brem, true)
        else
          let low = brem - crem in
          if low > 0 && s < cn * low then (s / low, s mod low, false)
          else
            let s = s - (cn * low) in
            (cn + (s / brem), s mod brem, true)
      in
      go (j + 1) s have_om (d :: acc)
  in
  go 0 s false []

let decode_seq ~space ~horizon ~n k seq_rank =
  let cn = horizon * n in
  match space with
  | Crash_only -> List.map (crash_of_digit ~n) (digits ~base:cn k seq_rank)
  | Mobile -> List.map (mobile_of_digit ~horizon ~n) (digits ~base:(3 * cn) k seq_rank)
  | Omission ->
    let ck = pow cn k in
    if seq_rank < ck then List.map (crash_of_digit ~n) (digits ~base:cn k seq_rank)
    else
      let b = cn + (2 * horizon) in
      let m = pow b k - ck in
      let r = seq_rank - ck in
      let victim = r / m in
      let s = r mod m in
      List.map (omission_of_digit ~horizon ~n ~victim) (unrank_mixed ~cn ~b k s)

let decode ?(space = Crash_only) ~horizon ~n ~max_faults idx =
  if idx < 0 then Error Out_of_range
  else
    let rec find_k k idx =
      if k > max_faults then Error Out_of_range
      else
        match block_exact ~space ~horizon ~n k with
        | None -> Error Budget_exceeded
        | Some block ->
          if idx < block then begin
            let per_flavour = block / n_flavours in
            let flavour = List.nth flavours (idx / per_flavour) in
            let r = idx mod per_flavour in
            let seq_rank = r / (1 lsl n) in
            let input_bits = r mod (1 lsl n) in
            let inputs = List.init n (fun i -> (input_bits lsr i) land 1 = 1) in
            Ok { inputs; faults = decode_seq ~space ~horizon ~n k seq_rank; flavour }
          end
          else find_k (k + 1) (idx - block)
    in
    find_k 0 idx

(* ----- rank (the inverse) ----- *)

let flavour_index fl =
  let rec go i = function
    | [] -> assert false
    | f :: rest -> if f = fl then i else go (i + 1) rest
  in
  go 0 flavours

let valid_fault ~horizon ~n (f : Fault.t) =
  f.Fault.step >= 0 && f.Fault.step < horizon && f.Fault.victim >= 0 && f.Fault.victim < n

let crash_digit ~n (f : Fault.t) = (f.Fault.step * n) + f.Fault.victim

(* seq rank within the exactly-[k] block, or None when the fault list
   does not belong to [space] *)
let rank_seq ~space ~horizon ~n faults =
  let cn = horizon * n in
  let k = List.length faults in
  match space with
  | Crash_only ->
    if List.for_all (fun (f : Fault.t) -> f.Fault.kind = Fault.Crash) faults then
      Some (List.fold_left (fun acc f -> (acc * cn) + crash_digit ~n f) 0 faults)
    else None
  | Mobile ->
    Some
      (List.fold_left
         (fun acc (f : Fault.t) ->
           (acc * 3 * cn) + (Fault.kind_rank f.Fault.kind * cn) + crash_digit ~n f)
         0 faults)
  | Omission -> (
    match List.filter Fault.is_omission faults with
    | [] -> Some (List.fold_left (fun acc f -> (acc * cn) + crash_digit ~n f) 0 faults)
    | om :: rest ->
      let victim = om.Fault.victim in
      if List.exists (fun (g : Fault.t) -> not (Proc_id.equal g.Fault.victim victim)) rest
      then None
      else begin
        let b = cn + (2 * horizon) in
        let digit (f : Fault.t) =
          match f.Fault.kind with
          | Fault.Crash -> crash_digit ~n f
          | Fault.Drop -> cn + f.Fault.step
          | Fault.Send_omit -> cn + horizon + f.Fault.step
        in
        (* rank of the digit string among length-k mixed strings *)
        let s =
          let rec go j have_om acc = function
            | [] -> acc
            | f :: rest ->
              let rem = k - j - 1 in
              let brem = pow b rem in
              let crem = pow cn rem in
              let d = digit f in
              let before =
                if have_om then d * brem
                else
                  let low = brem - crem in
                  (min d cn * low) + (max 0 (d - cn) * brem)
              in
              go (j + 1) (have_om || d >= cn) (acc + before) rest
          in
          go 0 false 0 faults
        in
        let ck = pow cn k in
        let m = pow b k - ck in
        Some (ck + (victim * m) + s)
      end)

let rank ?(space = Crash_only) ~horizon ~n ~max_faults plan =
  let k = List.length plan.faults in
  if
    k > max_faults
    || List.length plan.inputs <> n
    || not (List.for_all (valid_fault ~horizon ~n) plan.faults)
  then Error Out_of_range
  else
    (* the prefix: every block below k must be exactly representable *)
    let rec prefix j acc =
      if j = k then Ok acc
      else
        match block_exact ~space ~horizon ~n j with
        | None -> Error Budget_exceeded
        | Some block -> (
          match add_exact acc block with
          | None -> Error Budget_exceeded
          | Some acc -> prefix (j + 1) acc)
    in
    match prefix 0 0 with
    | Error e -> Error e
    | Ok before -> (
      match block_exact ~space ~horizon ~n k with
      | None -> Error Budget_exceeded
      | Some block -> (
        match rank_seq ~space ~horizon ~n plan.faults with
        | None -> Error Out_of_range
        | Some seq_rank ->
          let per_flavour = block / n_flavours in
          let input_bits =
            fst
              (List.fold_left
                 (fun (acc, i) b -> ((if b then acc lor (1 lsl i) else acc), i + 1))
                 (0, 0) plan.inputs)
          in
          let r =
            (flavour_index plan.flavour * per_flavour)
            + (seq_rank * (1 lsl n))
            + input_bits
          in
          (* r < block and before + block is exact, so this add is too *)
          Ok (before + r)))
