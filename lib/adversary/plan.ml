open Patterns_sim

type flavour = Fifo | Lifo | Round_robin

let flavours = [ Fifo; Lifo; Round_robin ]

let flavour_string = function
  | Fifo -> "fifo"
  | Lifo -> "lifo"
  | Round_robin -> "round-robin"

type t = {
  inputs : bool list;
  failures : (int * Proc_id.t) list;
  flavour : flavour;
}

let pp ppf p =
  Format.fprintf ppf "@[inputs %s, crashes [%s], schedule %s@]"
    (String.concat "" (List.map (fun b -> if b then "1" else "0") p.inputs))
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "p%d@step%d" v k) p.failures))
    (flavour_string p.flavour)

(* Saturating arithmetic: the plan space explodes in [max_failures],
   and a saturated count still compares correctly against any finite
   run budget. *)
let mul_cap a b = if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b
let add_cap a b = if a > max_int - b then max_int else a + b

let n_flavours = List.length flavours

(* plans with exactly [k] crashes, for crash-plan base [bk] = base^k *)
let block_size ~n bk = mul_cap n_flavours (mul_cap bk (1 lsl n))

let count ~horizon ~n ~max_failures =
  let base = horizon * n in
  let rec go k bk acc =
    if k > max_failures then acc
    else go (k + 1) (mul_cap bk base) (add_cap acc (block_size ~n bk))
  in
  go 0 1 0

let decode ~horizon ~n ~max_failures idx =
  if idx < 0 || idx >= count ~horizon ~n ~max_failures then
    invalid_arg (Printf.sprintf "Plan.decode: index %d out of range" idx);
  let base = horizon * n in
  let rec find_k k bk idx =
    let block = block_size ~n bk in
    if idx < block then (k, bk, idx) else find_k (k + 1) (mul_cap bk base) (idx - block)
  in
  let k, bk, r = find_k 0 1 idx in
  let per_flavour = mul_cap bk (1 lsl n) in
  let flavour = List.nth flavours (r / per_flavour) in
  let r = r mod per_flavour in
  let rank = r / (1 lsl n) in
  let input_bits = r mod (1 lsl n) in
  let inputs = List.init n (fun i -> (input_bits lsr i) land 1 = 1) in
  (* crash digits, most significant first: the lexicographic rank *)
  let rec digits j rank acc =
    if j = 0 then acc else digits (j - 1) (rank / base) ((rank mod base) :: acc)
  in
  let failures = List.map (fun d -> (d / n, d mod n)) (digits k rank []) in
  { inputs; failures; flavour }
