(* Command-line interface to the library: run protocols, enumerate
   schemes, classify against the taxonomy, and verify the lattice. *)

open Cmdliner
open Patterns_sim
open Patterns_core

let find_protocol name =
  match Patterns_protocols.Registry.find name with
  | Some e -> Ok e
  | None ->
    Error
      (Printf.sprintf "unknown protocol %S; try one of: %s" name
         (String.concat ", " (Patterns_protocols.Registry.names ())))

let parse_inputs n = function
  | None -> Ok (List.init n (fun _ -> true))
  | Some s ->
    if String.length s <> n then
      Error (Printf.sprintf "--inputs needs exactly %d bits, got %S" n s)
    else
      Ok (List.init n (fun i -> s.[i] = '1'))

let rule_of_registry entry =
  (* the broadcast protocol uses the Broadcast rule; the standalone
     termination protocol computes threshold-1; everything else is
     unanimity *)
  let open Patterns_protocols in
  if entry.Registry.name = "ben-or" then Decision_rule.Any_input
  else if entry.Registry.name = "reliable-broadcast" then Decision_rule.Broadcast 0
  else if entry.Registry.name = "termination" then Decision_rule.Threshold 1
  else if entry.Registry.name = "voting-star-thr3-5" then Decision_rule.Threshold 3
  else if entry.Registry.name = "voting-star-subset-5" then Decision_rule.Subset [ 0; 1 ]
  else Decision_rule.Unanimity

(* ----- list ----- *)

let list_cmd =
  let doc = "List the available protocols." in
  let run () =
    let table =
      Patterns_stdx.Table.create
        ~headers:
          [ ("name", Patterns_stdx.Table.Left); ("n", Patterns_stdx.Table.Right);
            ("description", Patterns_stdx.Table.Left) ]
    in
    List.iter
      (fun e ->
        Patterns_stdx.Table.add_row table
          [
            e.Patterns_protocols.Registry.name;
            (string_of_int e.Patterns_protocols.Registry.default_n
            ^ if e.Patterns_protocols.Registry.fixed_n then "" else "+");
            e.Patterns_protocols.Registry.describe;
          ])
      Patterns_protocols.Registry.all;
    Patterns_stdx.Table.print table
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ----- shared arguments ----- *)

let protocol_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROTOCOL" ~doc:"Protocol name (see $(b,list)).")

let n_arg =
  Arg.(value & opt (some int) None & info [ "n" ] ~docv:"N" ~doc:"Number of processors.")

let inputs_arg =
  Arg.(value & opt (some string) None
       & info [ "inputs" ] ~docv:"BITS" ~doc:"Initial bits, e.g. 1101. Default: all ones.")

let seed_arg =
  Arg.(value & opt (some int) None
       & info [ "seed" ] ~docv:"SEED" ~doc:"Random fair scheduler with this seed (default: deterministic FIFO).")

let fifo_notices_arg =
  Arg.(value & flag
       & info [ "fifo-notices" ]
         ~doc:"Fail-stop delivery discipline: a failure notice arrives only after all of the \
               failed sender's messages (the paper's default leaves them unordered).")

let failures_arg =
  Arg.(value & opt_all (pair ~sep:':' int int) []
       & info [ "fail" ] ~docv:"STEP:PROC" ~doc:"Fail-stop processor PROC at global step STEP (repeatable).")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ] ~docv:"J"
         ~doc:"Worker domains for the sweep (0 = all cores). The result is identical \
               for every value; only the wall clock changes.")

let resolve_jobs j = if j <= 0 then Patterns_stdx.Domain_pool.default_jobs () else j

let par_threshold_arg =
  Arg.(value & opt (some int) None
       & info [ "par-threshold" ] ~docv:"K"
         ~doc:"($(b,--par-mode layers) only) Frontier size at which a search layer is \
               expanded across the worker domains (default: automatic). The result is \
               identical for every value; only the wall clock changes.")

let par_mode_arg =
  Arg.(value
       & opt (some (enum [ ("async", Patterns_search.Search.Async);
                           ("layers", Patterns_search.Search.Layers) ])) None
       & info [ "par-mode" ] ~docv:"MODE"
         ~doc:"Parallel search driver: $(b,async) distributes work through per-worker \
               stealing deques over a lock-free visited table; $(b,layers) is the \
               layer-synchronous barrier driver. The default is $(b,async) everywhere \
               except $(b,realize), whose shortest-witness guarantee needs $(b,layers). \
               An exhaustive search produces identical answers and deterministic \
               counters under both; a truncated one keeps its counts but visits a \
               schedule-dependent subset under $(b,async).")

let metrics_json_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-json" ] ~docv:"FILE"
         ~doc:"Write the search kernel's metrics (schema $(b,patterns-search-metrics/8)) \
               as JSON to $(docv); $(b,-) means stdout.")

let db_arg =
  Arg.(value & opt (some string) None
       & info [ "db" ] ~docv:"FILE"
         ~doc:"Execution database (schema $(b,patterns-edge-db/2), streamed JSONL; /1 \
               documents are still read): consult the recorded \
               edge log before searching, record every fresh expansion into it, and \
               write it back to $(docv) on exit.  A missing file starts empty.  Inspect \
               it with $(b,query).")

let base_db_arg =
  Arg.(value & opt (some string) None
       & info [ "base-db" ] ~docv:"FILE"
         ~doc:"Incremental base for $(b,check)/$(b,classify): reuse the per-vector \
               $(b,classify_vec) facts an earlier run recorded into $(docv) — wholesale \
               when $(b,--max-failures) matches, semi-naively widened (only the crash \
               successors of the stored boundary are explored) when it grew by one — and \
               record freshly completed vectors back on exit.  Verdicts are bit-identical \
               to a from-scratch run; the metrics /8 section ($(b,delta_seeds), \
               $(b,delta_reused_edges)) counts the reuse.  Ignored while $(b,--deadline) \
               or $(b,--max-states) is set.  May name the same file as $(b,--db).")

let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline" ] ~docv:"SECONDS"
         ~doc:"Wall-clock budget for the search. Exceeding it truncates the answer \
               gracefully (exit 2) instead of hanging; the metrics record the hit.")

let max_states_arg =
  Arg.(value & opt (some int) None
       & info [ "max-states" ] ~docv:"K"
         ~doc:"Live-state budget (visited + frontier) per search. Exceeding it truncates \
               the answer gracefully (exit 2) instead of exhausting memory; deterministic \
               for every --jobs value.")

let spill_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "spill-dir" ] ~docv:"DIR"
         ~doc:"Disk-backed visited storage: evict cold fingerprint shards to sorted run \
               files under $(docv) whenever the resident store reaches $(b,--mem-budget) \
               bindings.  Answers and deterministic counters are bit-identical with and \
               without spilling; the metrics /7 section records the disk traffic.  Run \
               files are deleted when each search returns.  ($(b,hunt) keeps no visited \
               store, so there the flag is accepted and inert.)")

let mem_budget_arg =
  Arg.(value & opt int 1_000_000
       & info [ "mem-budget" ] ~docv:"K"
         ~doc:"($(b,--spill-dir) only) Resident-binding high-water mark per search: \
               reaching it evicts whole shards, largest first, until half the budget is \
               free.")

let checkpoint_arg =
  Arg.(value & opt (some string) None
       & info [ "checkpoint" ] ~docv:"FILE"
         ~doc:"Record each completed root (input vector, hunt index chunk) into $(docv) \
               (schema $(b,patterns-checkpoint/1)), atomically rewritten on every record; \
               a killed run picks up with $(b,--resume). Deadline-truncated roots are \
               never recorded.")

let resume_arg =
  Arg.(value & opt (some string) None
       & info [ "resume" ] ~docv:"FILE"
         ~doc:"Resume from a checkpoint written by $(b,--checkpoint): recorded roots are \
               replayed from $(docv), only the rest are recomputed, and the outcome — \
               answer, counters, exit code — is identical to an uninterrupted run.  A \
               missing file is a fresh start; a checkpoint whose recorded parameters \
               differ is refused.")

let kill_after_arg =
  Arg.(value & opt (some int) None
       & info [ "checkpoint-kill-after" ] ~docv:"K"
         ~doc:"Test hook: exit 99 after $(docv) fresh checkpoint records, leaving the \
               file for $(b,--resume).")

let spill_of dir mem_budget =
  Option.map (fun dir -> { Patterns_search.Search.dir; mem_budget }) dir

let checkpoint_spec checkpoint resume kill_after =
  match (checkpoint, resume) with
  | Some _, Some _ -> Error "at most one of --checkpoint and --resume"
  | Some file, None ->
    Ok (Some { Patterns_search.Checkpoint.file; resume = false; kill_after })
  | None, Some file ->
    Ok (Some { Patterns_search.Checkpoint.file; resume = true; kill_after })
  | None, None -> Ok None

(* Checkpoint header mismatches (and other refusals below the library
   surface) raise [Failure]; surface them as CLI errors, not
   backtraces. *)
let catch_failures f =
  try f () with Failure msg ->
    prerr_endline ("error: " ^ msg);
    exit 1

let emit_metrics dest (m : Patterns_search.Metrics.t) =
  match dest with
  | None -> ()
  | Some "-" ->
    print_string (Patterns_search.Metrics.to_json m);
    print_newline ()
  | Some file ->
    let oc = open_out file in
    output_string oc (Patterns_search.Metrics.to_json m);
    output_char oc '\n';
    close_out oc

let resolve_n entry n =
  let (module P : Protocol.S) = entry.Patterns_protocols.Registry.protocol in
  let n = Option.value n ~default:entry.Patterns_protocols.Registry.default_n in
  if P.valid_n n then Ok n
  else Error (Printf.sprintf "%s does not support n = %d" P.name n)

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("error: " ^ msg);
    exit 1

let load_db = function
  | None -> None
  | Some path ->
    (match Patterns_db.Db.load path with
    | Ok db -> Some (db, path)
    | Error msg -> or_die (Error msg))

let db_handle = Option.map fst
let save_db = function None -> () | Some (db, path) -> Patterns_db.Db.save db path

(* ----- run ----- *)

let run_cmd =
  let doc = "Run a protocol and print its trace, decisions and checks." in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit the trace as CSV instead of the report.")
  in
  let run name n inputs seed failures csv fifo_notices =
    let entry = or_die (find_protocol name) in
    let n = or_die (resolve_n entry n) in
    let inputs = or_die (parse_inputs n inputs) in
    let (module P : Protocol.S) = entry.Patterns_protocols.Registry.protocol in
    let module E = Engine.Make (P) in
    let scheduler =
      match seed with
      | None -> E.fifo_scheduler
      | Some seed -> E.random_scheduler (Patterns_stdx.Prng.create ~seed)
    in
    let r = E.run ~failures ~fifo_notices ~scheduler ~n ~inputs () in
    if csv then begin
      print_string (Trace.to_csv ~pp_msg:P.pp_msg r.E.trace);
      exit 0
    end;
    Format.printf "%a@." (Trace.pp ~pp_msg:P.pp_msg) r.E.trace;
    Format.printf "@.steps=%d messages=%d quiescent=%b@." r.E.steps
      (Trace.message_count r.E.trace) r.E.quiescent;
    List.iter
      (fun p ->
        Format.printf "%a: %a%s@." Proc_id.pp p Status.pp (E.status_of r.E.final p)
          (if E.is_failed r.E.final p then " (failed)" else ""))
      (Proc_id.all ~n);
    let rule = rule_of_registry entry in
    let verdict name = function
      | Ok () -> Format.printf "%-26s ok@." name
      | Error e -> Format.printf "%-26s VIOLATED: %s@." name e
    in
    Format.printf "@.";
    verdict "total consistency" (Check.total_consistency r.E.trace);
    verdict "interactive consistency" (Check.interactive_consistency r.E.trace);
    verdict "decision rule" (Check.decision_rule rule ~inputs r.E.trace)
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ protocol_arg $ n_arg $ inputs_arg $ seed_arg $ failures_arg $ csv_arg
      $ fifo_notices_arg)

(* ----- scheme ----- *)

let scheme_cmd =
  let doc = "Enumerate a protocol's scheme (all failure-free communication patterns)." in
  let run name n jobs par_threshold par_mode deadline max_states spill_dir mem_budget
      checkpoint resume kill_after metrics_json =
    let entry = or_die (find_protocol name) in
    let n = or_die (resolve_n entry n) in
    let spill = spill_of spill_dir mem_budget in
    let ckpt = or_die (checkpoint_spec checkpoint resume kill_after) in
    let (module P : Protocol.S) = entry.Patterns_protocols.Registry.protocol in
    let module S = Patterns_pattern.Scheme.Make (P) in
    let metrics = ref Patterns_search.Metrics.zero in
    let pats, stats =
      catch_failures (fun () ->
          S.scheme ~metrics ~jobs:(resolve_jobs jobs) ?par_threshold ?par_mode ?deadline
            ?max_live:max_states ?spill ?checkpoint:ckpt ~n ())
    in
    Format.printf "%a@.%a@." Patterns_pattern.Scheme.pp_stats stats
      Patterns_pattern.Scheme.pp_scheme pats;
    emit_metrics metrics_json !metrics;
    if stats.Patterns_pattern.Scheme.truncated then exit 2
  in
  Cmd.v (Cmd.info "scheme" ~doc)
    Term.(
      const run $ protocol_arg $ n_arg $ jobs_arg $ par_threshold_arg $ par_mode_arg
      $ deadline_arg $ max_states_arg $ spill_dir_arg $ mem_budget_arg $ checkpoint_arg
      $ resume_arg $ kill_after_arg $ metrics_json_arg)

(* ----- realize ----- *)

let realize_cmd =
  let doc =
    "Synthesize a failure-free execution with a given communication pattern, or report \
     that none exists (or that the search budget ran out first)."
  in
  let pattern_arg =
    Arg.(value & opt int 1
         & info [ "pattern" ] ~docv:"K"
           ~doc:"1-based index into the target scheme's pattern listing (see $(b,scheme)).")
  in
  let target_of_arg =
    Arg.(value & opt (some string) None
         & info [ "target-of" ] ~docv:"PROTOCOL2"
           ~doc:"Take the target pattern from this protocol's scheme instead — a foreign \
                 pattern is how $(b,unrealizable) answers arise.")
  in
  let max_configs_arg =
    Arg.(value & opt int 1_000_000
         & info [ "max-configs" ] ~docv:"K"
           ~doc:"Search budget; when hit, the answer is $(b,truncated), not unrealizable.")
  in
  let run name n inputs target_of k max_configs jobs par_threshold par_mode spill_dir
      mem_budget checkpoint resume kill_after metrics_json =
    let entry = or_die (find_protocol name) in
    let n = or_die (resolve_n entry n) in
    let inputs = or_die (parse_inputs n inputs) in
    let spill = spill_of spill_dir mem_budget in
    let ckpt = or_die (checkpoint_spec checkpoint resume kill_after) in
    let target_entry =
      match target_of with None -> entry | Some name2 -> or_die (find_protocol name2)
    in
    let (module T : Protocol.S) = target_entry.Patterns_protocols.Registry.protocol in
    let module ST = Patterns_pattern.Scheme.Make (T) in
    let pats, _ = ST.patterns_for_inputs ~n ~inputs () in
    let pats = Patterns_pattern.Pattern.Set.elements pats in
    let target =
      match if k < 1 then None else List.nth_opt pats (k - 1) with
      | Some p -> p
      | None ->
        or_die
          (Error
             (Printf.sprintf "%s admits %d pattern(s) from these inputs; --pattern %d is out of range"
                T.name (List.length pats) k))
    in
    let (module P : Protocol.S) = entry.Patterns_protocols.Registry.protocol in
    let module S = Patterns_pattern.Scheme.Make (P) in
    Format.printf "target: pattern %d/%d of %s (%d messages, height %d)@." k (List.length pats)
      T.name
      (Patterns_pattern.Pattern.message_count target)
      (Patterns_pattern.Pattern.height target);
    let metrics = ref Patterns_search.Metrics.zero in
    let result =
      catch_failures (fun () ->
          S.realize ~metrics ~jobs:(resolve_jobs jobs) ?par_threshold ?par_mode
            ~max_configs ?spill ?checkpoint:ckpt ~n ~inputs ~target ())
    in
    let code =
      match result with
      | Patterns_pattern.Scheme.Realized actions ->
        Format.printf "realized by %s in %d events:@." P.name (List.length actions);
        List.iter (fun a -> Format.printf "  %a@." Action.pp a) actions;
        0
      | Patterns_pattern.Scheme.Unrealizable ->
        Format.printf "unrealizable: no failure-free execution of %s from these inputs has \
                       the target pattern@."
          P.name;
        1
      | Patterns_pattern.Scheme.Truncated ->
        Format.printf "truncated: the %d-configuration budget ran out before an answer \
                       (raise --max-configs)@."
          max_configs;
        2
    in
    emit_metrics metrics_json !metrics;
    exit code
  in
  Cmd.v (Cmd.info "realize" ~doc)
    Term.(
      const run $ protocol_arg $ n_arg $ inputs_arg $ target_of_arg $ pattern_arg
      $ max_configs_arg $ jobs_arg $ par_threshold_arg $ par_mode_arg $ spill_dir_arg
      $ mem_budget_arg $ checkpoint_arg $ resume_arg $ kill_after_arg $ metrics_json_arg)

(* ----- dot ----- *)

let dot_cmd =
  let doc = "Print the communication pattern of a fair run as Graphviz DOT." in
  let run name n inputs =
    let entry = or_die (find_protocol name) in
    let n = or_die (resolve_n entry n) in
    let inputs = or_die (parse_inputs n inputs) in
    let (module P : Protocol.S) = entry.Patterns_protocols.Registry.protocol in
    let module E = Engine.Make (P) in
    let r = E.run ~scheduler:E.fifo_scheduler ~n ~inputs () in
    print_string
      (Patterns_stdx.Dot.to_string
         (Patterns_pattern.Render.trace_to_dot ~name:P.name r.E.trace))
  in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const run $ protocol_arg $ n_arg $ inputs_arg)

(* ----- msc ----- *)

let msc_cmd =
  let doc = "Space-time (lane) diagram of a run." in
  let run name n inputs seed failures =
    let entry = or_die (find_protocol name) in
    let n = or_die (resolve_n entry n) in
    let inputs = or_die (parse_inputs n inputs) in
    let (module P : Protocol.S) = entry.Patterns_protocols.Registry.protocol in
    let module E = Engine.Make (P) in
    let scheduler =
      match seed with
      | None -> E.fifo_scheduler
      | Some seed -> E.random_scheduler (Patterns_stdx.Prng.create ~seed)
    in
    let r = E.run ~failures ~scheduler ~n ~inputs () in
    print_string (Patterns_pattern.Render.lanes ~pp_msg:P.pp_msg ~n r.E.trace)
  in
  Cmd.v (Cmd.info "msc" ~doc)
    Term.(const run $ protocol_arg $ n_arg $ inputs_arg $ seed_arg $ failures_arg)

(* ----- check ----- *)

let classify_term =
  let max_failures_arg =
    Arg.(value & opt int 1 & info [ "max-failures" ] ~docv:"F" ~doc:"Failures injected per execution.")
  in
  let max_configs_arg =
    Arg.(value & opt int 400_000
         & info [ "max-configs" ] ~docv:"K"
           ~doc:"Exploration budget; when hit, the verdict is marked $(b,truncated) and the \
                 exit code is 2.")
  in
  let run name n max_failures max_configs fifo_notices jobs par_threshold par_mode
      deadline max_states spill_dir mem_budget checkpoint resume kill_after db_file
      base_db_file metrics_json =
    let entry = or_die (find_protocol name) in
    let n = or_die (resolve_n entry n) in
    let rule = rule_of_registry entry in
    let spill = spill_of spill_dir mem_budget in
    let ckpt = or_die (checkpoint_spec checkpoint resume kill_after) in
    let db = load_db db_file in
    (* --base-db may name the same file as --db: share the handle so
       neither save clobbers the other's writes *)
    let shared =
      match (db_file, base_db_file) with Some a, Some b -> a = b | _ -> false
    in
    let base = if shared then db else load_db base_db_file in
    let metrics = ref Patterns_search.Metrics.zero in
    let v =
      catch_failures (fun () ->
          Classify.classify ~metrics ?db:(db_handle db) ?base:(db_handle base)
            ~max_failures ~max_configs ~fifo_notices ~jobs:(resolve_jobs jobs)
            ?par_threshold ?par_mode ?deadline ?max_live:max_states ?spill
            ?checkpoint:ckpt ~rule ~n entry.Patterns_protocols.Registry.protocol)
    in
    save_db db;
    if not shared then save_db base;
    Format.printf "%a@." Classify.pp v;
    List.iter (fun d -> Format.printf "  %s@." d) v.Classify.details;
    emit_metrics metrics_json !metrics;
    if v.Classify.truncated then begin
      (if !metrics.Patterns_search.Metrics.deadline_hits > 0 then
         Format.printf "truncated: the wall-clock deadline ran out; the verdict is a lower \
                        bound (raise --deadline)@."
       else if !metrics.Patterns_search.Metrics.live_limit_hits > 0 then
         Format.printf "truncated: the live-state budget ran out; the verdict is a lower \
                        bound (raise --max-states)@."
       else
         Format.printf "truncated: the %d-configuration budget ran out; the verdict is a \
                        lower bound (raise --max-configs)@."
           max_configs);
      exit 2
    end
  in
  Term.(
    const run $ protocol_arg $ n_arg $ max_failures_arg $ max_configs_arg $ fifo_notices_arg
    $ jobs_arg $ par_threshold_arg $ par_mode_arg $ deadline_arg $ max_states_arg
    $ spill_dir_arg $ mem_budget_arg $ checkpoint_arg $ resume_arg $ kill_after_arg
    $ db_arg $ base_db_arg $ metrics_json_arg)

let check_cmd =
  let doc = "Classify a protocol against the taxonomy by exhaustive exploration." in
  Cmd.v (Cmd.info "check" ~doc) classify_term

let classify_cmd =
  let doc = "Alias of $(b,check): classify a protocol against the taxonomy." in
  Cmd.v (Cmd.info "classify" ~doc) classify_term

(* ----- reduce ----- *)

let reduce_cmd =
  let doc = "Compare the schemes of two protocols (the reducibility ingredient)." in
  let second_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"PROTOCOL2" ~doc:"Second protocol.")
  in
  let run name1 name2 n =
    let e1 = or_die (find_protocol name1) in
    let e2 = or_die (find_protocol name2) in
    let n = Option.value n ~default:e1.Patterns_protocols.Registry.default_n in
    let rel, left, right =
      Patterns_pattern.Reduce.compare_protocols ~n e1.Patterns_protocols.Registry.protocol
        e2.Patterns_protocols.Registry.protocol
    in
    Format.printf "%s: %d patterns; %s: %d patterns@." name1
      (Patterns_pattern.Pattern.Set.cardinal left) name2
      (Patterns_pattern.Pattern.Set.cardinal right);
    Format.printf "@[<v>%a@]@." Patterns_pattern.Reduce.pp_relationship rel
  in
  Cmd.v (Cmd.info "reduce" ~doc) Term.(const run $ protocol_arg $ second_arg $ n_arg)

(* ----- latency ----- *)

let latency_cmd =
  let doc = "Simulated latency of a fair run under a seeded delay model." in
  let run name n inputs seed =
    let entry = or_die (find_protocol name) in
    let n = or_die (resolve_n entry n) in
    let inputs = or_die (parse_inputs n inputs) in
    let (module P : Protocol.S) = entry.Patterns_protocols.Registry.protocol in
    let module E = Engine.Make (P) in
    let r = E.run ~scheduler:E.fifo_scheduler ~n ~inputs () in
    let seed = Option.value seed ~default:42 in
    let model = Patterns_pattern.Latency.Uniform { lo = 5.0; hi = 15.0 } in
    let t = Patterns_pattern.Latency.evaluate ~seed ~model ~n r.E.trace in
    Format.printf "critical path (pattern height): %d hops@."
      (Patterns_pattern.Latency.critical_path_bound r.E.trace);
    Format.printf "completion under U(5,15) delays, unit step cost: %.1f@."
      t.Patterns_pattern.Latency.completion;
    List.iter
      (fun (p, when_) -> Format.printf "  %a decides at %.1f@." Proc_id.pp p when_)
      (Patterns_pattern.Latency.decision_times ~seed ~model ~n r.E.trace)
  in
  Cmd.v (Cmd.info "latency" ~doc) Term.(const run $ protocol_arg $ n_arg $ inputs_arg $ seed_arg)

(* ----- hunt ----- *)

(* Certificate facts are keyed by a fingerprint of the rendered
   certificate, so re-hunting the same violation overwrites rather
   than duplicates.  The stored value wraps the certificate with its
   derived crash schedule, which is what [query --certs-touching]
   filters on. *)
let cert_fact_key cert =
  let doc = Patterns_stdx.Json.to_string (Patterns_adversary.Cert.to_json cert) in
  let fp =
    String.fold_left
      (fun acc c -> Patterns_stdx.Fingerprint.feed acc (Char.code c))
      Patterns_stdx.Fingerprint.seed doc
  in
  Printf.sprintf "%s|%016x" cert.Patterns_adversary.Cert.protocol
    (Patterns_stdx.Fingerprint.to_int fp)

let record_cert db cert =
  (* replay over the database records the execution's edges and its
     verdict fact; the certificate fact makes it queryable *)
  let (_ : Patterns_adversary.Replay.verdict) =
    Patterns_adversary.Replay.replay ~db cert
  in
  let crashes =
    List.map (fun p -> Patterns_stdx.Json.Int p) (Patterns_adversary.Cert.crashes cert)
  in
  Patterns_db.Db.put_fact db ~kind:"cert" ~key:(cert_fact_key cert)
    (Patterns_stdx.Json.Obj
       [
         ("crashes", Patterns_stdx.Json.List crashes);
         ("cert", Patterns_adversary.Cert.to_json cert);
       ])

let hunt_cmd =
  let doc =
    "Search fault schedules (crashes, and with --faults also message omissions) for a \
     property violation."
  in
  let property_arg =
    let prop_conv =
      Arg.enum
        [ ("tc", Audit.TC); ("ic", Audit.IC); ("agreement", Audit.Agreement); ("wt", Audit.WT);
          ("rule", Audit.Rule) ]
    in
    Arg.(value & opt prop_conv Audit.TC & info [ "property" ] ~docv:"PROP"
         ~doc:"Property to attack: tc, ic, agreement, wt or rule.")
  in
  let crashes_arg =
    Arg.(value & opt int 2 & info [ "crashes" ] ~docv:"F" ~doc:"Crashes per run.")
  in
  let faults_arg =
    let space_conv =
      Arg.enum
        [ ("crash", Patterns_adversary.Plan.Crash_only);
          ("omission", Patterns_adversary.Plan.Omission);
          ("mobile", Patterns_adversary.Plan.Mobile) ]
    in
    Arg.(value & opt space_conv Patterns_adversary.Plan.Crash_only
         & info [ "faults" ] ~docv:"SPACE"
           ~doc:"Fault model: $(b,crash) is the fail-stop adversary (the default, \
                 bit-identical to what it always was); $(b,omission) adds receive-drop \
                 and send-omission faults of one static victim per plan; $(b,mobile) \
                 lets every fault pick its kind and victim independently.")
  in
  let fault_budget_arg =
    Arg.(value & opt (some int) None
         & info [ "fault-budget" ] ~docv:"B"
           ~doc:"Total fault budget per run — crashes and omissions together. \
                 Defaults to $(b,--crashes).")
  in
  let runs_arg =
    Arg.(value & opt int 5000 & info [ "runs" ] ~docv:"K" ~doc:"Run budget.")
  in
  let mode_arg =
    let mode_conv =
      Arg.enum
        [ ("random", Patterns_adversary.Hunt.Random);
          ("systematic", Patterns_adversary.Hunt.Systematic) ]
    in
    Arg.(value & opt mode_conv Patterns_adversary.Hunt.Random
         & info [ "mode" ] ~docv:"MODE"
           ~doc:"Adversary: $(b,random) samples seeded fault schedules; $(b,systematic) \
                 sweeps the canonical fault-plan space in order (fault count ascending, \
                 then schedule flavour, fault plan and inputs), so the first hit is a \
                 smallest-fault-count witness.")
  in
  let horizon_arg =
    Arg.(value & opt int 60
         & info [ "horizon" ] ~docv:"STEPS"
           ~doc:"Crash-step range for the systematic plan space (the random adversary \
                 always draws from 60).")
  in
  let cert_arg =
    Arg.(value & opt (some string) None
         & info [ "cert" ] ~docv:"FILE"
           ~doc:"Write a replayable violation certificate (schema \
                 $(b,patterns-violation-cert/1), or $(b,/2) when the script carries \
                 omission directives) as JSON to $(docv); $(b,-) means stdout. \
                 Consume it with $(b,replay) and $(b,shrink).")
  in
  let no_memo_arg =
    Arg.(value & flag
         & info [ "no-memo" ]
           ~doc:"Disable the systematic adversary's shared failure-free prefix \
                 memoization and replay every fault plan from the initial \
                 configuration.  Certificates, messages and exit codes are \
                 bit-identical either way; only the $(b,prefix_hits)/\
                 $(b,prefix_states_saved) counters and the wall clock change.  \
                 Random mode never uses the memo.")
  in
  let run name n property crashes space fault_budget runs seed fifo_notices jobs mode
      horizon cert_out no_memo deadline spill_dir mem_budget checkpoint resume kill_after
      db_file metrics_json =
    let entry = or_die (find_protocol name) in
    let n = or_die (resolve_n entry n) in
    let rule = rule_of_registry entry in
    let seed = Option.value seed ~default:1984 in
    let budget = Option.value fault_budget ~default:crashes in
    (* a hunt keeps no visited store: --spill-dir is accepted for
       interface uniformity but has nothing to spill *)
    let (_ : Patterns_search.Search.spill option) = spill_of spill_dir mem_budget in
    let ckpt = or_die (checkpoint_spec checkpoint resume kill_after) in
    let db = load_db db_file in
    let metrics = ref Patterns_search.Metrics.zero in
    let result =
      catch_failures (fun () ->
          Patterns_adversary.Hunt.hunt ~metrics ~memo:(not no_memo)
            ~max_failures:budget ~max_runs:runs ~fifo_notices
            ~jobs:(resolve_jobs jobs) ?deadline ?checkpoint:ckpt ~horizon ~mode
            ~space ~property ~rule ~n ~seed entry)
    in
    let code =
      match result with
      | Ok cert ->
        print_endline cert.Patterns_adversary.Cert.message;
        (match cert_out with
        | None -> ()
        | Some dest ->
          let doc =
            Patterns_stdx.Json.to_string (Patterns_adversary.Cert.to_json cert) ^ "\n"
          in
          if dest = "-" then print_string doc
          else begin
            let oc = open_out dest in
            output_string oc doc;
            close_out oc;
            Printf.printf "certificate written to %s\n" dest
          end);
        Option.iter (fun (db, _) -> record_cert db cert) db;
        0
      | Error tried ->
        (* a truncated search, not a proof of absence *)
        if !metrics.Patterns_search.Metrics.deadline_hits > 0 then
          Printf.printf "no violation found in %d runs (search truncated: deadline \
                         exceeded; raise --deadline)\n"
            tried
        else
          Printf.printf "no violation found in %d runs (search truncated: run budget exhausted; \
                         raise --runs)\n"
            tried;
        2
    in
    save_db db;
    emit_metrics metrics_json !metrics;
    exit code
  in
  Cmd.v (Cmd.info "hunt" ~doc)
    Term.(
      const run $ protocol_arg $ n_arg $ property_arg $ crashes_arg $ faults_arg
      $ fault_budget_arg $ runs_arg $ seed_arg
      $ fifo_notices_arg $ jobs_arg $ mode_arg $ horizon_arg $ cert_arg $ no_memo_arg
      $ deadline_arg $ spill_dir_arg $ mem_budget_arg $ checkpoint_arg $ resume_arg
      $ kill_after_arg $ db_arg $ metrics_json_arg)

(* ----- replay / shrink ----- *)

let read_cert path =
  let contents =
    try
      let ic = open_in path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      Ok s
    with Sys_error msg -> Error msg
  in
  Result.bind contents (fun s ->
      Result.bind (Patterns_stdx.Json.of_string s) Patterns_adversary.Cert.of_json)

let cert_pos_arg =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"CERT" ~doc:"Violation certificate (JSON, from $(b,hunt --cert)).")

let replay_cmd =
  let doc =
    "Re-execute a violation certificate and re-check its property. Exit 0: reproduced; \
     1: not reproduced; 2: the certificate does not apply here."
  in
  let run path db_file metrics_json =
    let cert = or_die (read_cert path) in
    let db = load_db db_file in
    Format.printf "%a@." Patterns_adversary.Cert.pp cert;
    let verdict, metrics =
      Patterns_adversary.Replay.replay_metrics ?db:(db_handle db) cert
    in
    Format.printf "%a@." Patterns_adversary.Replay.pp verdict;
    save_db db;
    emit_metrics metrics_json metrics;
    exit (Patterns_adversary.Replay.exit_code verdict)
  in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const run $ cert_pos_arg $ db_arg $ metrics_json_arg)

let shrink_cmd =
  let doc =
    "Minimize a violation certificate (ddmin over the schedule, instance and input \
     shrinking); every step is re-validated by replay, so the result still reproduces."
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
           ~doc:"Write the shrunk certificate to $(docv) (default: stdout).")
  in
  let run path out db_file =
    let cert = or_die (read_cert path) in
    let db = load_db db_file in
    let report = or_die (Patterns_adversary.Shrink.shrink ?db:(db_handle db) cert) in
    save_db db;
    Format.printf "%a@." Patterns_adversary.Shrink.pp_report report;
    let doc =
      Patterns_stdx.Json.to_string
        (Patterns_adversary.Cert.to_json report.Patterns_adversary.Shrink.cert)
      ^ "\n"
    in
    (match out with
    | None -> print_string doc
    | Some dest ->
      let oc = open_out dest in
      output_string oc doc;
      close_out oc;
      Printf.printf "shrunk certificate written to %s\n" dest)
  in
  Cmd.v (Cmd.info "shrink" ~doc) Term.(const run $ cert_pos_arg $ out_arg $ db_arg)

(* ----- query ----- *)

let query_cmd =
  let doc =
    "Query a recorded execution database (JSON output). Exit 0: at least one result; \
     1: no results; 2: error."
  in
  let db_pos_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"DB"
           ~doc:"Execution database file (written by $(b,--db) on hunt, replay, shrink, \
                 check and classify).  A missing file is an empty database.")
  in
  let src_arg =
    Arg.(value & opt (some int) None
         & info [ "src" ] ~docv:"FP" ~doc:"Bind the source config fingerprint of the edge pattern.")
  in
  let event_arg =
    Arg.(value & opt (some string) None
         & info [ "event" ] ~docv:"DESC" ~doc:"Bind the event descriptor of the edge pattern.")
  in
  let dst_arg =
    Arg.(value & opt (some int) None
         & info [ "dst" ] ~docv:"FP"
           ~doc:"Bind the destination config fingerprint of the edge pattern.")
  in
  let path_arg =
    Arg.(value & opt (some (pair ~sep:':' int int)) None
         & info [ "path" ] ~docv:"SRC:DST"
           ~doc:"Shortest recorded path between two config fingerprints (canonical \
                 breadth-first witness).")
  in
  let reachable_arg =
    Arg.(value & opt (some int) None
         & info [ "reachable" ] ~docv:"FP"
           ~doc:"Every config fingerprint reachable from $(docv) over recorded edges.")
  in
  let certs_arg =
    Arg.(value & opt (some int) None
         & info [ "certs-touching" ] ~docv:"PROC"
           ~doc:"Stored violation certificates whose crash schedule touches processor \
                 $(docv).")
  in
  let limit_arg =
    Arg.(value & opt (some int) None
         & info [ "limit" ] ~docv:"N"
           ~doc:"Page the edge, reachable and certs-touching result sets: return at most \
                 $(docv) results.  $(b,count) still reports the total number of matches \
                 and an extra $(b,truncated) field says whether the list was cut; the \
                 exit code keeps following the total (0: at least one match; 1: none; \
                 2: error).")
  in
  let run db_path src event dst path reachable certs limit =
    let die msg =
      prerr_endline ("error: " ^ msg);
      exit 2
    in
    let db =
      match Patterns_db.Db.load db_path with Ok db -> db | Error msg -> die msg
    in
    let module Q = Patterns_db.Query in
    let module J = Patterns_stdx.Json in
    let modes =
      List.length (List.filter Fun.id
           [ path <> None; reachable <> None; certs <> None ])
    in
    if modes > 1 then die "at most one of --path, --reachable, --certs-touching";
    (match limit with
    | Some k when k < 0 -> die "--limit must be nonnegative"
    | _ -> ());
    (* paging: the list is cut to the first N results (the sorted,
       insertion-order-independent query order), the count stays the
       total, and a [truncated] field — present only when --limit is
       given, so unpaged output is unchanged — says whether anything
       was dropped *)
    let page l =
      match limit with
      | None -> (l, [])
      | Some k ->
        let rec take n = function x :: tl when n > 0 -> x :: take (n - 1) tl | _ -> [] in
        let cut = List.length l > k in
        ((if cut then take k l else l), [ ("truncated", J.Bool cut) ])
    in
    let doc, count =
      match (path, reachable, certs) with
      | Some (s, d), _, _ -> (
        match Q.path db ~src:s ~dst:d with
        | None -> (J.Obj [ ("query", J.String "path"); ("found", J.Bool false) ], 0)
        | Some edges ->
          ( J.Obj
              [
                ("query", J.String "path");
                ("found", J.Bool true);
                ("length", J.Int (List.length edges));
                ("path", Q.edges_to_json edges);
              ],
            1 ))
      | _, Some fp, _ ->
        let cs = Q.reachable db fp in
        let shown, trunc = page cs in
        ( J.Obj
            ([ ("query", J.String "reachable"); ("count", J.Int (List.length cs)) ]
            @ trunc
            @ [ ("configs", J.List (List.map (fun c -> J.Int c) shown)) ]),
          List.length cs )
      | _, _, Some p ->
        let cs = Q.certs_touching db p in
        let shown, trunc = page cs in
        ( J.Obj
            ([ ("query", J.String "certs-touching"); ("count", J.Int (List.length cs)) ]
            @ trunc
            @ [
                ( "certs",
                  J.List
                    (List.map
                       (fun (k, v) -> J.Obj [ ("key", J.String k); ("fact", v) ])
                       shown) );
              ]),
          List.length cs )
      | None, None, None ->
        let es = Q.edges db ?src ?event ?dst () in
        let shown, trunc = page es in
        ( J.Obj
            ([ ("query", J.String "edges"); ("count", J.Int (List.length es)) ]
            @ trunc
            @ [ ("edges", Q.edges_to_json shown) ]),
          List.length es )
    in
    print_endline (J.to_string doc);
    exit (if count > 0 then 0 else 1)
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      const run $ db_pos_arg $ src_arg $ event_arg $ dst_arg $ path_arg $ reachable_arg
      $ certs_arg $ limit_arg)

(* ----- lattice / theorems ----- *)

let lattice_cmd =
  let doc = "Verify and print the paper's six-problem lattice." in
  let run () =
    let evidences = Theorems.all () in
    Format.printf "%a@." Lattice.pp_verified (Lattice.verify evidences)
  in
  Cmd.v (Cmd.info "lattice" ~doc) Term.(const run $ const ())

let theorems_cmd =
  let doc = "Replay the executable witnesses for the paper's theorems." in
  let run () =
    List.iter (fun e -> Format.printf "%a@.@." Theorems.pp_evidence e) (Theorems.all ())
  in
  Cmd.v (Cmd.info "theorems" ~doc) Term.(const run $ const ())

let () =
  let doc = "Patterns of Communication in Consensus Protocols (Dwork & Skeen, PODC 1984)" in
  let info = Cmd.info "patterns-cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; scheme_cmd; realize_cmd; dot_cmd; msc_cmd; check_cmd;
            classify_cmd; reduce_cmd; latency_cmd; hunt_cmd; replay_cmd; shrink_cmd;
            query_cmd; lattice_cmd; theorems_cmd ]))
